//! F-IVM behind the unified [`Engine`] and [`MaintainableEngine`] traits.
//!
//! [`FivmEngine`] answers covariance-shaped [`AggQuery`] batches (scalar
//! `SUM(1)`, `SUM(ci)`, `SUM(ci·cj)` — no filters, no group-bys) by
//! *streaming* the database through a factorized view tree over the
//! covariance ring and reading the maintained triple. It is deliberately a
//! fourth backend with the same contract as flat/factorized/LMFAO on its
//! supported fragment: the cross-engine agreement tests exercise it on
//! identical `AggQuery` values, and any other batch shape is rejected
//! with a clear error rather than answered wrongly.
//!
//! Because streaming **is** maintenance, the engine's
//! [`MaintainableEngine`] implementation is its natural form: `prepare`
//! streams the catalog once, and `apply_delta` folds each
//! [`Delta`](fdb_data::Delta) into the ring-valued view tree in
//! `O(delta × fanout)` — the paper's "one-shot evaluation is the special
//! case of maintenance where the stream happens to end".

use crate::maintain::{CovMaintainer, IvmStrategy};
use fdb_core::batch::{Aggregate, Fn1};
use fdb_core::ir::{AggQuery, BatchResult};
use fdb_core::maintain::{CustomMaint, MaintState, MaintainableEngine};
use fdb_core::Engine;
use fdb_data::{DataError, Database, Delta};
use fdb_ring::CovTriple;
use std::collections::HashMap;

/// The F-IVM backend: maintains the covariance triple under a full stream
/// of the database, then reads the requested aggregates out of it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FivmEngine;

/// How one aggregate maps into the covariance triple.
enum TripleSlot {
    /// `SUM(1)` → `c`.
    Count,
    /// `SUM(cont[i])` → `s[i]`.
    Sum(usize),
    /// `SUM(cont[i] * cont[j])` → `q_at(i, j)`.
    Moment(usize, usize),
}

/// Classifies the batch as covariance-shaped, assigning each distinct
/// factor attribute a continuous index in first-seen order.
fn classify(aggs: &[Aggregate]) -> Result<(Vec<String>, Vec<TripleSlot>), DataError> {
    let unsupported = |what: &str| {
        DataError::Invalid(format!(
            "FivmEngine supports covariance-shaped batches only (scalar SUM(1), \
             SUM(x), SUM(x*y)); got an aggregate with {what}"
        ))
    };
    let mut cont: Vec<String> = Vec::new();
    let index_of = |attr: &str, cont: &mut Vec<String>| -> usize {
        match cont.iter().position(|a| a == attr) {
            Some(i) => i,
            None => {
                cont.push(attr.to_string());
                cont.len() - 1
            }
        }
    };
    let mut slots = Vec::with_capacity(aggs.len());
    for agg in aggs {
        if !agg.filter.is_empty() {
            return Err(unsupported("a filter"));
        }
        if !agg.group_by.is_empty() {
            return Err(unsupported("a group-by"));
        }
        let slot = match agg.factors.as_slice() {
            [] => TripleSlot::Count,
            [(a, Fn1::Ident)] => TripleSlot::Sum(index_of(a, &mut cont)),
            [(a, Fn1::Square)] => {
                let i = index_of(a, &mut cont);
                TripleSlot::Moment(i, i)
            }
            [(a, Fn1::Ident), (b, Fn1::Ident)] => {
                let i = index_of(a, &mut cont);
                let j = index_of(b, &mut cont);
                TripleSlot::Moment(i, j)
            }
            _ => return Err(unsupported("a product of degree > 2")),
        };
        slots.push(slot);
    }
    Ok((cont, slots))
}

/// Reads the requested aggregates out of the maintained triple.
fn triple_to_result(triple: &CovTriple, slots: &[TripleSlot]) -> BatchResult {
    let empty_key: Box<[i64]> = Vec::new().into();
    let mut groups = Vec::with_capacity(slots.len());
    let mut values = Vec::with_capacity(slots.len());
    for slot in slots {
        let v = match *slot {
            TripleSlot::Count => triple.c,
            TripleSlot::Sum(i) => triple.s[i],
            TripleSlot::Moment(i, j) => triple.q_at(i, j),
        };
        let mut map: HashMap<Box<[i64]>, f64> = HashMap::new();
        if v != 0.0 {
            map.insert(empty_key.clone(), v);
        }
        groups.push(Vec::new());
        values.push(map);
    }
    BatchResult { groups, values }
}

/// Builds the streamed maintainer for a validated covariance query.
fn build_maintainer(
    db: &Database,
    q: &AggQuery,
) -> Result<(CovMaintainer, Vec<TripleSlot>), DataError> {
    let (cont, slots) = classify(&q.batch.aggs)?;
    let rels = q.relation_refs();
    // Root the view tree at the largest relation, like the other
    // backends root their join trees; ties break toward the *first* such
    // relation (our datasets list the fact first), so streaming into an
    // empty catalog roots at the fact — the same tree the first- and
    // higher-order baselines maintain, keeping Figure 4 symmetric.
    let root = (0..rels.len())
        .max_by_key(|&i| (db.get(rels[i]).map(|r| r.len()).unwrap_or(0), std::cmp::Reverse(i)))
        .unwrap_or(0);
    let cont_refs: Vec<&str> = cont.iter().map(String::as_str).collect();
    let maint = CovMaintainer::new(db, &rels, root, &cont_refs, IvmStrategy::Fivm)?;
    Ok((maint, slots))
}

impl Engine for FivmEngine {
    fn name(&self) -> &'static str {
        "fivm"
    }

    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        q.validate(db)?;
        let (maint, slots) = build_maintainer(db, q)?;
        Ok(triple_to_result(&maint.triple(), &slots))
    }
}

/// The engine's maintained structure behind
/// [`fdb_core::maintain::MaintState`]: the streamed covariance view tree
/// plus the batch's slot mapping.
struct FivmMaint {
    maint: CovMaintainer,
    slots: Vec<TripleSlot>,
}

impl CustomMaint for FivmMaint {
    fn apply_delta(
        &mut self,
        _db: &Database,
        q: &AggQuery,
        delta: &Delta,
    ) -> Result<BatchResult, DataError> {
        // Before the covariance triple mutates: a fault here leaves the
        // maintainer untouched, and the `MaintainableEngine::apply_delta`
        // wrapper rolls the state's database back to match.
        fdb_data::fault::check("maintain-view")?;
        // Deltas on relations outside the join leave the triple as is.
        if q.relations.contains(&delta.relation) {
            self.maint.apply_delta(delta)?;
        }
        Ok(triple_to_result(&self.maint.triple(), &self.slots))
    }

    fn eval(&mut self, _db: &Database, _q: &AggQuery) -> Result<BatchResult, DataError> {
        Ok(triple_to_result(&self.maint.triple(), &self.slots))
    }
}

impl MaintainableEngine for FivmEngine {
    /// Streams the catalog through the covariance view tree once; every
    /// later [`MaintainableEngine::apply_delta`] is `O(delta × fanout)`
    /// ring maintenance — no rescan of any base relation.
    fn prepare(&self, db: &Database, q: &AggQuery) -> Result<MaintState, DataError> {
        q.validate(db)?;
        let (maint, slots) = build_maintainer(db, q)?;
        Ok(MaintState::custom(db.clone(), q.clone(), Box::new(FivmMaint { maint, slots })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_core::{covariance_batch, AggBatch, FilterOp, FlatEngine};
    use fdb_data::{AttrType, Relation, Schema, Value};

    /// F(a, b, x) ⋈ D1(a, u) ⋈ D2(b, v).
    fn snowflake() -> Database {
        let mut db = Database::new();
        let f = Relation::from_rows(
            Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int), ("x", AttrType::Double)]),
            vec![
                vec![Value::Int(0), Value::Int(0), Value::F64(1.0)],
                vec![Value::Int(0), Value::Int(1), Value::F64(2.0)],
                vec![Value::Int(1), Value::Int(0), Value::F64(-3.0)],
            ],
        )
        .unwrap();
        let d1 = Relation::from_rows(
            Schema::of(&[("a", AttrType::Int), ("u", AttrType::Double)]),
            vec![vec![Value::Int(0), Value::F64(5.0)], vec![Value::Int(1), Value::F64(-1.0)]],
        )
        .unwrap();
        let d2 = Relation::from_rows(
            Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]),
            vec![vec![Value::Int(0), Value::F64(2.0)], vec![Value::Int(1), Value::F64(4.0)]],
        )
        .unwrap();
        db.add("F", f);
        db.add("D1", d1);
        db.add("D2", d2);
        db
    }

    #[test]
    fn agrees_with_flat_engine_on_covariance_batch() {
        let db = snowflake();
        let q = AggQuery::new(&["F", "D1", "D2"], covariance_batch(&["x", "u", "v"], &[]));
        let fivm = FivmEngine.run(&db, &q).unwrap();
        let flat = FlatEngine.run(&db, &q).unwrap();
        for i in 0..q.batch.len() {
            let (a, b) = (fivm.scalar(i), flat.scalar(i));
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "agg {i}: {a} vs {b}");
        }
    }

    #[test]
    fn rejects_non_covariance_batches() {
        let db = snowflake();
        let mut grouped = AggBatch::new();
        grouped.push(fdb_core::Aggregate::count().by(&["x"]));
        let mut filtered = AggBatch::new();
        filtered.push(fdb_core::Aggregate::sum("x").filtered("u", FilterOp::Ge(0.0)));
        for batch in [grouped, filtered] {
            let q = AggQuery::new(&["F", "D1", "D2"], batch);
            assert!(FivmEngine.run(&db, &q).is_err());
        }
    }

    #[test]
    fn maintained_state_tracks_deltas_in_constant_work_per_row() {
        let db = snowflake();
        let q = AggQuery::new(&["F", "D1", "D2"], covariance_batch(&["x", "u", "v"], &[]));
        let mut st = FivmEngine.prepare(&db, &q).unwrap();
        let mut shadow = db.clone();
        let deltas = [
            Delta::insert("F", vec![Value::Int(1), Value::Int(1), Value::F64(7.0)]),
            Delta::delete("F", vec![Value::Int(0), Value::Int(0), Value::F64(1.0)]),
            Delta::new("D1")
                .with_insert(vec![Value::Int(1), Value::F64(2.5)])
                .with_delete(vec![Value::Int(1), Value::F64(-1.0)]),
        ];
        for (i, d) in deltas.iter().enumerate() {
            let got = FivmEngine.apply_delta(&mut st, d).unwrap();
            shadow.apply_delta(d).unwrap();
            let cold = FlatEngine.run(&shadow, &q).unwrap();
            for k in 0..q.batch.len() {
                let (a, b) = (got.scalar(k), cold.scalar(k));
                assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "delta {i} agg {k}: {a} vs {b}");
            }
        }
    }
}
