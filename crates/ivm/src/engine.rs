//! F-IVM behind the unified [`Engine`] trait.
//!
//! [`FivmEngine`] answers covariance-shaped [`AggQuery`] batches (scalar
//! `SUM(1)`, `SUM(ci)`, `SUM(ci·cj)` — no filters, no group-bys) by
//! *streaming* the database through a factorized view tree over the
//! covariance ring and reading the maintained triple. It is deliberately a
//! fourth backend with the same contract as flat/factorized/LMFAO on its
//! supported fragment: the cross-engine agreement tests exercise it on
//! identical `AggQuery` values, and any other batch shape is rejected
//! with a clear error rather than answered wrongly.

use crate::base::{StreamDb, Update};
use crate::viewtree::{Fivm, TreeShape};
use fdb_core::batch::{Aggregate, Fn1};
use fdb_core::ir::{AggQuery, BatchResult};
use fdb_core::Engine;
use fdb_data::{DataError, Database, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// The F-IVM backend: maintains the covariance triple under a full stream
/// of the database, then reads the requested aggregates out of it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FivmEngine;

/// How one aggregate maps into the covariance triple.
enum TripleSlot {
    /// `SUM(1)` → `c`.
    Count,
    /// `SUM(cont[i])` → `s[i]`.
    Sum(usize),
    /// `SUM(cont[i] * cont[j])` → `q_at(i, j)`.
    Moment(usize, usize),
}

/// Classifies the batch as covariance-shaped, assigning each distinct
/// factor attribute a continuous index in first-seen order.
fn classify(aggs: &[Aggregate]) -> Result<(Vec<String>, Vec<TripleSlot>), DataError> {
    let unsupported = |what: &str| {
        DataError::Invalid(format!(
            "FivmEngine supports covariance-shaped batches only (scalar SUM(1), \
             SUM(x), SUM(x*y)); got an aggregate with {what}"
        ))
    };
    let mut cont: Vec<String> = Vec::new();
    let index_of = |attr: &str, cont: &mut Vec<String>| -> usize {
        match cont.iter().position(|a| a == attr) {
            Some(i) => i,
            None => {
                cont.push(attr.to_string());
                cont.len() - 1
            }
        }
    };
    let mut slots = Vec::with_capacity(aggs.len());
    for agg in aggs {
        if !agg.filter.is_empty() {
            return Err(unsupported("a filter"));
        }
        if !agg.group_by.is_empty() {
            return Err(unsupported("a group-by"));
        }
        let slot = match agg.factors.as_slice() {
            [] => TripleSlot::Count,
            [(a, Fn1::Ident)] => TripleSlot::Sum(index_of(a, &mut cont)),
            [(a, Fn1::Square)] => {
                let i = index_of(a, &mut cont);
                TripleSlot::Moment(i, i)
            }
            [(a, Fn1::Ident), (b, Fn1::Ident)] => {
                let i = index_of(a, &mut cont);
                let j = index_of(b, &mut cont);
                TripleSlot::Moment(i, j)
            }
            _ => return Err(unsupported("a product of degree > 2")),
        };
        slots.push(slot);
    }
    Ok((cont, slots))
}

impl Engine for FivmEngine {
    fn name(&self) -> &'static str {
        "fivm"
    }

    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        q.validate(db)?;
        let (cont, slots) = classify(&q.batch.aggs)?;
        let rels = q.relation_refs();
        let schemas: Vec<Schema> = rels
            .iter()
            .map(|n| Ok(db.get(n)?.schema().clone()))
            .collect::<Result<_, DataError>>()?;
        // Root the view tree at the largest relation, like the other
        // backends root their join trees.
        let root = (0..rels.len())
            .max_by_key(|&i| db.get(rels[i]).map(|r| r.len()).unwrap_or(0))
            .unwrap_or(0);
        let shape = Arc::new(TreeShape::build(schemas.clone(), &rels, root)?);
        let mut sdb = StreamDb::new(schemas);
        shape.register_indices(&mut sdb);
        let cont_refs: Vec<&str> = cont.iter().map(String::as_str).collect();
        let mut fivm = Fivm::new(Arc::clone(&shape), &cont_refs)?;
        for (ri, name) in rels.iter().enumerate() {
            let rel = db.get(name)?;
            for r in 0..rel.len() {
                let up = Update::insert(ri, rel.row_vec(r));
                sdb.apply(&up)?;
                fivm.apply(&sdb, &up);
            }
        }
        let triple = fivm.result();
        let empty_key: Box<[i64]> = Vec::new().into();
        let mut groups = Vec::with_capacity(slots.len());
        let mut values = Vec::with_capacity(slots.len());
        for slot in &slots {
            let v = match *slot {
                TripleSlot::Count => triple.c,
                TripleSlot::Sum(i) => triple.s[i],
                TripleSlot::Moment(i, j) => triple.q_at(i, j),
            };
            let mut map: HashMap<Box<[i64]>, f64> = HashMap::new();
            if v != 0.0 {
                map.insert(empty_key.clone(), v);
            }
            groups.push(Vec::new());
            values.push(map);
        }
        Ok(BatchResult { groups, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_core::{covariance_batch, AggBatch, FilterOp, FlatEngine};
    use fdb_data::{AttrType, Relation, Value};

    /// F(a, b, x) ⋈ D1(a, u) ⋈ D2(b, v).
    fn snowflake() -> Database {
        let mut db = Database::new();
        let f = Relation::from_rows(
            Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int), ("x", AttrType::Double)]),
            vec![
                vec![Value::Int(0), Value::Int(0), Value::F64(1.0)],
                vec![Value::Int(0), Value::Int(1), Value::F64(2.0)],
                vec![Value::Int(1), Value::Int(0), Value::F64(-3.0)],
            ],
        )
        .unwrap();
        let d1 = Relation::from_rows(
            Schema::of(&[("a", AttrType::Int), ("u", AttrType::Double)]),
            vec![vec![Value::Int(0), Value::F64(5.0)], vec![Value::Int(1), Value::F64(-1.0)]],
        )
        .unwrap();
        let d2 = Relation::from_rows(
            Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]),
            vec![vec![Value::Int(0), Value::F64(2.0)], vec![Value::Int(1), Value::F64(4.0)]],
        )
        .unwrap();
        db.add("F", f);
        db.add("D1", d1);
        db.add("D2", d2);
        db
    }

    #[test]
    fn agrees_with_flat_engine_on_covariance_batch() {
        let db = snowflake();
        let q = AggQuery::new(&["F", "D1", "D2"], covariance_batch(&["x", "u", "v"], &[]));
        let fivm = FivmEngine.run(&db, &q).unwrap();
        let flat = FlatEngine.run(&db, &q).unwrap();
        for i in 0..q.batch.len() {
            let (a, b) = (fivm.scalar(i), flat.scalar(i));
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "agg {i}: {a} vs {b}");
        }
    }

    #[test]
    fn rejects_non_covariance_batches() {
        let db = snowflake();
        let mut grouped = AggBatch::new();
        grouped.push(fdb_core::Aggregate::count().by(&["x"]));
        let mut filtered = AggBatch::new();
        filtered.push(fdb_core::Aggregate::sum("x").filtered("u", FilterOp::Ge(0.0)));
        for batch in [grouped, filtered] {
            let q = AggQuery::new(&["F", "D1", "D2"], batch);
            assert!(FivmEngine.run(&db, &q).is_err());
        }
    }
}
