//! The IFAQ interpreter with an operation counter.
//!
//! Values are numbers, records, or dictionaries (keyed by a canonical
//! serialization of the key value, carrying the original key for
//! iteration). The counter tallies arithmetic and lookup operations so the
//! rewrite tests can *measure* the work each optimisation stage removes.

use crate::expr::Expr;
use fdb_data::{DataError, Database};
use std::collections::BTreeMap;

/// An IFAQ runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// A number.
    Num(f64),
    /// A record.
    Record(BTreeMap<String, Val>),
    /// A dictionary: canonical key → (original key value, payload).
    Dict(BTreeMap<String, (Val, Val)>),
}

impl Val {
    /// The numeric payload; 0.0 for non-numbers (IFAQ's additive default).
    pub fn num(&self) -> f64 {
        match self {
            Val::Num(x) => *x,
            _ => 0.0,
        }
    }

    /// Canonical string form — dictionary key identity.
    pub fn key(&self) -> String {
        match self {
            Val::Num(x) => format!("n{}", x.to_bits()),
            Val::Record(fields) => {
                let inner: Vec<String> =
                    fields.iter().map(|(k, v)| format!("{k}:{}", v.key())).collect();
                format!("r{{{}}}", inner.join(","))
            }
            Val::Dict(entries) => {
                let inner: Vec<String> =
                    entries.iter().map(|(k, (_, v))| format!("{k}=>{}", v.key())).collect();
                format!("d{{{}}}", inner.join(","))
            }
        }
    }
}

/// Operation counter: the cost model for the staging experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Additions performed.
    pub adds: u64,
    /// Multiplications performed.
    pub muls: u64,
    /// Dictionary lookups performed.
    pub lookups: u64,
    /// Loop iterations executed.
    pub iterations: u64,
}

impl Counter {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.lookups + self.iterations
    }
}

/// The interpreter: a database of relations plus the counter.
pub struct Interp<'a> {
    db: &'a Database,
    /// Operation counter (reset between runs as needed).
    pub counter: Counter,
}

impl<'a> Interp<'a> {
    /// An interpreter over `db`.
    pub fn new(db: &'a Database) -> Self {
        Self { db, counter: Counter::default() }
    }

    /// Evaluates `e` in an empty environment.
    pub fn eval(&mut self, e: &Expr) -> Result<Val, DataError> {
        let mut env = Vec::new();
        self.go(e, &mut env)
    }

    fn relation_val(&self, name: &str) -> Result<Val, DataError> {
        let rel = self.db.get(name)?;
        let mut dict = BTreeMap::new();
        for r in 0..rel.len() {
            let mut fields = BTreeMap::new();
            for (c, attr) in rel.schema().attrs().iter().enumerate() {
                fields.insert(attr.name.clone(), Val::Num(rel.value_f64(r, c)));
            }
            let key = Val::Record(fields);
            let canon = key.key();
            // Multiplicities accumulate for duplicate tuples.
            match dict.get_mut(&canon) {
                None => {
                    dict.insert(canon, (key, Val::Num(1.0)));
                }
                Some((_, Val::Num(m))) => *m += 1.0,
                Some(_) => unreachable!("relation payloads are numeric"),
            }
        }
        Ok(Val::Dict(dict))
    }

    fn go(&mut self, e: &Expr, env: &mut Vec<(String, Val)>) -> Result<Val, DataError> {
        match e {
            Expr::Num(x) => Ok(Val::Num(*x)),
            Expr::Str(s) => Ok(Val::Record(BTreeMap::from([(s.clone(), Val::Num(1.0))]))),
            Expr::Var(v) => env
                .iter()
                .rev()
                .find(|(n, _)| n == v)
                .map(|(_, val)| val.clone())
                .ok_or_else(|| DataError::Invalid(format!("unbound variable `{v}`"))),
            Expr::Let { name, value, body } => {
                let val = self.go(value, env)?;
                env.push((name.clone(), val));
                let out = self.go(body, env);
                env.pop();
                out
            }
            Expr::Record(fields) => {
                let mut out = BTreeMap::new();
                for (f, fe) in fields {
                    out.insert(f.clone(), self.go(fe, env)?);
                }
                Ok(Val::Record(out))
            }
            Expr::Field(rec, f) => match self.go(rec, env)? {
                Val::Record(fields) => fields
                    .get(f)
                    .cloned()
                    .ok_or_else(|| DataError::Invalid(format!("missing field `{f}`"))),
                other => Err(DataError::Invalid(format!("field access on non-record {other:?}"))),
            },
            Expr::Lookup(d, k) => {
                let dict = self.go(d, env)?;
                let key = self.go(k, env)?;
                self.counter.lookups += 1;
                match dict {
                    Val::Dict(entries) => {
                        Ok(entries.get(&key.key()).map(|(_, v)| v.clone()).unwrap_or(Val::Num(0.0)))
                    }
                    Val::Record(fields) => {
                        // Lookup into a record by string key (post-
                        // specialisation programs use Field instead).
                        if let Val::Record(kf) = &key {
                            if kf.len() == 1 {
                                let f = kf.keys().next().expect("single key");
                                return Ok(fields.get(f).cloned().unwrap_or(Val::Num(0.0)));
                            }
                        }
                        Err(DataError::Invalid("bad record lookup key".into()))
                    }
                    _ => Err(DataError::Invalid("lookup on non-dictionary".into())),
                }
            }
            Expr::SetLit(keys) => {
                let mut dict = BTreeMap::new();
                for k in keys {
                    let kv = Val::Record(BTreeMap::from([(k.clone(), Val::Num(1.0))]));
                    dict.insert(kv.key(), (kv, Val::Num(1.0)));
                }
                Ok(Val::Dict(dict))
            }
            Expr::Rel(name) => self.relation_val(name),
            Expr::Sum { var, domain, body } => {
                let dom = self.go(domain, env)?;
                let Val::Dict(entries) = dom else {
                    return Err(DataError::Invalid("sum over non-dictionary".into()));
                };
                let mut acc = 0.0;
                for (_, (key, _)) in entries {
                    self.counter.iterations += 1;
                    env.push((var.clone(), key));
                    let v = self.go(body, env)?;
                    env.pop();
                    self.counter.adds += 1;
                    acc += v.num();
                }
                Ok(Val::Num(acc))
            }
            Expr::LamDict { var, domain, body } => {
                let dom = self.go(domain, env)?;
                let Val::Dict(entries) = dom else {
                    return Err(DataError::Invalid("lambda over non-dictionary".into()));
                };
                let mut out = BTreeMap::new();
                for (canon, (key, _)) in entries {
                    self.counter.iterations += 1;
                    env.push((var.clone(), key.clone()));
                    let v = self.go(body, env)?;
                    env.pop();
                    out.insert(canon, (key, v));
                }
                Ok(Val::Dict(out))
            }
            Expr::Add(a, b) => {
                let (x, y) = (self.go(a, env)?, self.go(b, env)?);
                self.counter.adds += 1;
                Ok(Val::Num(x.num() + y.num()))
            }
            Expr::Mul(a, b) => {
                let (x, y) = (self.go(a, env)?, self.go(b, env)?);
                self.counter.muls += 1;
                Ok(Val::Num(x.num() * y.num()))
            }
            Expr::Eq(a, b) => {
                let (x, y) = (self.go(a, env)?, self.go(b, env)?);
                Ok(Val::Num(if x.key() == y.key() { 1.0 } else { 0.0 }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Relation, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add(
            "R",
            Relation::from_rows(
                Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]),
                vec![vec![Value::Int(1), Value::F64(10.0)], vec![Value::Int(2), Value::F64(20.0)]],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn sum_over_relation_with_multiplicity() {
        let db = db();
        let mut interp = Interp::new(&db);
        // Σ_{t ∈ R} R(t) * t.x = 30
        let e = Expr::sum(
            "t",
            Expr::Rel("R".into()),
            Expr::mul(
                Expr::lookup(Expr::Rel("R".into()), Expr::var("t")),
                Expr::field(Expr::var("t"), "x"),
            ),
        );
        let v = interp.eval(&e).unwrap();
        assert_eq!(v, Val::Num(30.0));
        assert!(interp.counter.iterations >= 2);
        assert!(interp.counter.lookups >= 2);
    }

    #[test]
    fn let_and_records() {
        let db = db();
        let mut interp = Interp::new(&db);
        let e = Expr::let_(
            "r",
            Expr::Record(vec![("a".into(), Expr::Num(2.0)), ("b".into(), Expr::Num(3.0))]),
            Expr::mul(Expr::field(Expr::var("r"), "a"), Expr::field(Expr::var("r"), "b")),
        );
        assert_eq!(interp.eval(&e).unwrap(), Val::Num(6.0));
    }

    #[test]
    fn lamdict_over_setlit() {
        let db = db();
        let mut interp = Interp::new(&db);
        let e = Expr::lam("f", Expr::SetLit(vec!["p".into(), "q".into()]), Expr::Num(7.0));
        // Structural assertion instead of a panic-based match arm: a wrong
        // shape fails the test with the value printed, it never `panic!`s
        // through an unwind the harness cannot attribute.
        let v = interp.eval(&e).unwrap();
        assert!(
            matches!(v, Val::Dict(ref d) if d.len() == 2),
            "expected a 2-entry dict, got {v:?}"
        );
    }

    #[test]
    fn eq_indicator() {
        let db = db();
        let mut interp = Interp::new(&db);
        let e = Expr::eq(Expr::Num(2.0), Expr::Num(2.0));
        assert_eq!(interp.eval(&e).unwrap(), Val::Num(1.0));
        let e = Expr::eq(Expr::Num(2.0), Expr::Num(3.0));
        assert_eq!(interp.eval(&e).unwrap(), Val::Num(0.0));
    }

    #[test]
    fn unbound_variable_errors() {
        let db = db();
        let mut interp = Interp::new(&db);
        assert!(interp.eval(&Expr::var("nope")).is_err());
    }
}
