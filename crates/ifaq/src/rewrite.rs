//! Rule-based program transformations (the Figure 11 pipeline).
//!
//! Every pass is equivalence-preserving; the tests in [`crate::derivation`]
//! verify both semantics preservation and a strict drop in interpreter
//! operation counts after each stage.

use crate::expr::Expr;

/// Flattens `Mul` into a factor list (for factoring rewrites).
fn mul_factors(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Mul(a, b) => {
            let mut out = mul_factors(a);
            out.extend(mul_factors(b));
            out
        }
        _ => vec![e.clone()],
    }
}

fn mul_of(mut factors: Vec<Expr>) -> Expr {
    match factors.len() {
        0 => Expr::Num(1.0),
        1 => factors.pop().expect("len 1"),
        _ => {
            let first = factors.remove(0);
            factors.into_iter().fold(first, Expr::mul)
        }
    }
}

/// **Loop factorization** (distributivity): inside every
/// `Σ_{v} f1 * … * fk`, factors independent of `v` move out of the sum:
/// `Σ_v a·g(v)  ⇒  a · Σ_v g(v)`. Applied bottom-up to a fixpoint, this
/// pushes aggregates past joins (§5.3 "we can now leverage the
/// distributivity of multiplication over addition to factorise").
pub fn factor_out_of_sums(e: &Expr) -> Expr {
    let e = map_children(e, &factor_out_of_sums);
    if let Expr::Sum { var, domain, body } = &e {
        let factors = mul_factors(body);
        let (indep, dep): (Vec<Expr>, Vec<Expr>) =
            factors.into_iter().partition(|f| !f.references(var));
        if !indep.is_empty() {
            let inner =
                Expr::Sum { var: var.clone(), domain: domain.clone(), body: Box::new(mul_of(dep)) };
            let mut out = mul_of(indep);
            out = Expr::mul(out, inner);
            return out;
        }
    }
    e
}

/// **Code motion / static memoization**: hoists expensive (`Σ`-containing)
/// subexpressions that do not depend on the loop variable of an enclosing
/// `λ` out into a `let`, so they are computed once instead of per key
/// (§5.3 "the code motion transformation moves the computation of M
/// outside the while convergence loop").
pub fn hoist_invariants(e: &Expr) -> Expr {
    let e = map_children(e, &hoist_invariants);
    if let Expr::LamDict { var, domain, body } = &e {
        if let Some(sub) = find_invariant_sum(body, var) {
            let tmp = fresh_name(&sub);
            let new_body = replace(body, &sub, &Expr::Var(tmp.clone()));
            return Expr::Let {
                name: tmp,
                value: Box::new(*Box::new(sub)),
                body: Box::new(Expr::LamDict {
                    var: var.clone(),
                    domain: domain.clone(),
                    body: Box::new(new_body),
                }),
            };
        }
    }
    e
}

/// **Schema specialisation / loop unrolling**: `Σ` and `λ` over statically
/// known key sets unroll; dynamic lookups with static keys become static
/// field accesses (§5.3 "we convert dictionaries over F into records so
/// that the dynamic accesses become static").
pub fn unroll_static(e: &Expr) -> Expr {
    let e = map_children(e, &unroll_static);
    match &e {
        Expr::Sum { var, domain, body } => {
            if let Expr::SetLit(keys) = domain.as_ref() {
                let mut acc: Option<Expr> = None;
                for k in keys {
                    let term = body.subst(var, &Expr::Str(k.clone()));
                    acc = Some(match acc {
                        None => term,
                        Some(prev) => Expr::add(prev, term),
                    });
                }
                return unroll_static(&acc.unwrap_or(Expr::Num(0.0)));
            }
            e
        }
        Expr::LamDict { var, domain, body } => {
            if let Expr::SetLit(keys) = domain.as_ref() {
                let fields = keys
                    .iter()
                    .map(|k| (k.clone(), unroll_static(&body.subst(var, &Expr::Str(k.clone())))))
                    .collect();
                return Expr::Record(fields);
            }
            e
        }
        // Lookup with a static string key on a record expression → Field.
        Expr::Lookup(d, k) => {
            if let Expr::Str(key) = k.as_ref() {
                return Expr::Field(d.clone(), key.clone());
            }
            e
        }
        _ => e,
    }
}

/// The full pipeline, to a fixpoint: factorization, hoisting,
/// specialisation (Figure 11's high-level → schema → aggregate stages).
pub fn optimize(e: &Expr) -> Expr {
    let mut cur = e.clone();
    for _ in 0..16 {
        let next = unroll_static(&hoist_invariants(&factor_out_of_sums(&cur)));
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// Applies `f` to every direct child.
fn map_children(e: &Expr, f: &impl Fn(&Expr) -> Expr) -> Expr {
    match e {
        Expr::Num(_) | Expr::Str(_) | Expr::Var(_) | Expr::Rel(_) | Expr::SetLit(_) => e.clone(),
        Expr::Let { name, value, body } => {
            Expr::Let { name: name.clone(), value: Box::new(f(value)), body: Box::new(f(body)) }
        }
        Expr::Record(fields) => {
            Expr::Record(fields.iter().map(|(n, x)| (n.clone(), f(x))).collect())
        }
        Expr::Field(x, n) => Expr::Field(Box::new(f(x)), n.clone()),
        Expr::Lookup(d, k) => Expr::Lookup(Box::new(f(d)), Box::new(f(k))),
        Expr::Sum { var, domain, body } => {
            Expr::Sum { var: var.clone(), domain: Box::new(f(domain)), body: Box::new(f(body)) }
        }
        Expr::LamDict { var, domain, body } => {
            Expr::LamDict { var: var.clone(), domain: Box::new(f(domain)), body: Box::new(f(body)) }
        }
        Expr::Add(a, b) => Expr::add(f(a), f(b)),
        Expr::Mul(a, b) => Expr::mul(f(a), f(b)),
        Expr::Eq(a, b) => Expr::eq(f(a), f(b)),
    }
}

/// Finds a `Sum` subexpression of `body` that does not reference `var`
/// (and is not the whole body).
fn find_invariant_sum(body: &Expr, var: &str) -> Option<Expr> {
    fn walk(e: &Expr, var: &str, out: &mut Option<Expr>) {
        if out.is_some() {
            return;
        }
        if matches!(e, Expr::Sum { .. }) && !e.references(var) {
            *out = Some(e.clone());
            return;
        }
        match e {
            Expr::Let { value, body, .. } => {
                walk(value, var, out);
                walk(body, var, out);
            }
            Expr::Record(fs) => fs.iter().for_each(|(_, x)| walk(x, var, out)),
            Expr::Field(x, _) => walk(x, var, out),
            Expr::Lookup(d, k) => {
                walk(d, var, out);
                walk(k, var, out);
            }
            Expr::Sum { domain, body, .. } | Expr::LamDict { domain, body, .. } => {
                walk(domain, var, out);
                walk(body, var, out);
            }
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Eq(a, b) => {
                walk(a, var, out);
                walk(b, var, out);
            }
            _ => {}
        }
    }
    let mut out = None;
    walk(body, var, &mut out);
    out
}

/// Structural replacement of `target` by `with` everywhere in `e`.
fn replace(e: &Expr, target: &Expr, with: &Expr) -> Expr {
    if e == target {
        return with.clone();
    }
    map_children(e, &|c| replace(c, target, with))
}

/// A deterministic fresh name derived from the expression's shape.
fn fresh_name(e: &Expr) -> String {
    format!("_memo{}", e.size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Interp;
    use fdb_data::{AttrType, Database, Relation, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add(
            "R",
            Relation::from_rows(
                Schema::of(&[("x", AttrType::Double)]),
                (1..=4).map(|i| vec![Value::F64(i as f64)]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn factoring_preserves_semantics_and_cuts_muls() {
        // Σ_t (5 * t.x): factor 5 out.
        let e = Expr::sum(
            "t",
            Expr::Rel("R".into()),
            Expr::mul(Expr::Num(5.0), Expr::field(Expr::var("t"), "x")),
        );
        let opt = factor_out_of_sums(&e);
        // 5 must now multiply the sum, not each term.
        assert!(matches!(opt, Expr::Mul(_, _)));
        let db = db();
        let mut i1 = Interp::new(&db);
        let v1 = i1.eval(&e).unwrap();
        let mut i2 = Interp::new(&db);
        let v2 = i2.eval(&opt).unwrap();
        assert_eq!(v1, v2);
        assert!(i2.counter.muls < i1.counter.muls, "{:?} vs {:?}", i2.counter, i1.counter);
    }

    #[test]
    fn hoisting_moves_inner_sum_out_of_lambda() {
        // λ_f (Σ_t t.x) * 2 — the sum is f-invariant.
        let inner = Expr::sum("t", Expr::Rel("R".into()), Expr::field(Expr::var("t"), "x"));
        let e = Expr::lam(
            "f",
            Expr::SetLit(vec!["a".into(), "b".into(), "c".into()]),
            Expr::mul(inner, Expr::Num(2.0)),
        );
        let opt = hoist_invariants(&e);
        assert!(matches!(opt, Expr::Let { .. }), "got {opt:?}");
        let db = db();
        let mut i1 = Interp::new(&db);
        let v1 = i1.eval(&e).unwrap();
        let mut i2 = Interp::new(&db);
        let v2 = i2.eval(&opt).unwrap();
        assert_eq!(v1, v2);
        // 3 keys × 4 iterations before; 4 + 3 after.
        assert!(i2.counter.iterations < i1.counter.iterations);
    }

    #[test]
    fn unrolling_turns_static_loops_into_records() {
        let e = Expr::lam("f", Expr::SetLit(vec!["p".into(), "q".into()]), Expr::Num(1.0));
        let opt = unroll_static(&e);
        assert!(matches!(opt, Expr::Record(_)));
        // Static lookup becomes field access.
        let l = Expr::lookup(opt.clone(), Expr::Str("p".into()));
        let spec = unroll_static(&l);
        assert!(matches!(spec, Expr::Field(_, _)));
    }

    #[test]
    fn optimize_reaches_fixpoint() {
        let e = Expr::sum(
            "t",
            Expr::Rel("R".into()),
            Expr::mul(Expr::Num(2.0), Expr::field(Expr::var("t"), "x")),
        );
        let o1 = optimize(&e);
        let o2 = optimize(&o1);
        assert_eq!(o1, o2);
    }
}
