//! The IFAQ expression language.
//!
//! Dictionaries map keys (scalars or records) to values; sets are
//! dictionaries where only keys matter; `Σ` folds over a dictionary's
//! support; `λ` builds a dictionary from a domain. Relations enter as
//! dictionaries from tuple-records to multiplicities (§5.3 "IFAQ
//! represents relations as dictionaries mapping tuples to their
//! multiplicities").

/// An IFAQ expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Num(f64),
    /// A string literal (field/feature names as first-class keys).
    Str(String),
    /// A variable reference.
    Var(String),
    /// `let name = value in body`.
    Let {
        /// Bound name.
        name: String,
        /// Bound value.
        value: Box<Expr>,
        /// Body.
        body: Box<Expr>,
    },
    /// A record literal.
    Record(Vec<(String, Expr)>),
    /// Static field access `e.f`.
    Field(Box<Expr>, String),
    /// Dynamic dictionary lookup `dict[key]` (0 when absent).
    Lookup(Box<Expr>, Box<Expr>),
    /// A statically known set of string keys (feature sets).
    SetLit(Vec<String>),
    /// A named base relation (dictionary tuple → multiplicity).
    Rel(String),
    /// `Σ_{var ∈ sup(domain)} body` — a stateful fold.
    Sum {
        /// Loop variable bound to each key.
        var: String,
        /// The dictionary/set iterated over.
        domain: Box<Expr>,
        /// Summand.
        body: Box<Expr>,
    },
    /// `λ_{var ∈ sup(domain)} body` — builds a dictionary keyed by the
    /// domain's keys.
    LamDict {
        /// Loop variable.
        var: String,
        /// The domain.
        domain: Box<Expr>,
        /// Per-key value.
        body: Box<Expr>,
    },
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Equality indicator (`1.0` / `0.0`) — join conditions.
    Eq(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a == b` as a 0/1 indicator.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// `e.f`.
    pub fn field(e: Expr, f: &str) -> Expr {
        Expr::Field(Box::new(e), f.to_string())
    }

    /// `dict[key]`.
    pub fn lookup(d: Expr, k: Expr) -> Expr {
        Expr::Lookup(Box::new(d), Box::new(k))
    }

    /// A variable.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// `Σ_{var ∈ domain} body`.
    pub fn sum(var: &str, domain: Expr, body: Expr) -> Expr {
        Expr::Sum { var: var.to_string(), domain: Box::new(domain), body: Box::new(body) }
    }

    /// `λ_{var ∈ domain} body`.
    pub fn lam(var: &str, domain: Expr, body: Expr) -> Expr {
        Expr::LamDict { var: var.to_string(), domain: Box::new(domain), body: Box::new(body) }
    }

    /// `let name = value in body`.
    pub fn let_(name: &str, value: Expr, body: Expr) -> Expr {
        Expr::Let { name: name.to_string(), value: Box::new(value), body: Box::new(body) }
    }

    /// True if `name` occurs free in `self`.
    pub fn references(&self, name: &str) -> bool {
        match self {
            Expr::Num(_) | Expr::Str(_) | Expr::Rel(_) | Expr::SetLit(_) => false,
            Expr::Var(v) => v == name,
            Expr::Let { name: n, value, body } => {
                value.references(name) || (n != name && body.references(name))
            }
            Expr::Record(fields) => fields.iter().any(|(_, e)| e.references(name)),
            Expr::Field(e, _) => e.references(name),
            Expr::Lookup(d, k) => d.references(name) || k.references(name),
            Expr::Sum { var, domain, body } | Expr::LamDict { var, domain, body } => {
                domain.references(name) || (var != name && body.references(name))
            }
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Eq(a, b) => {
                a.references(name) || b.references(name)
            }
        }
    }

    /// Substitutes every free occurrence of `name` with `with` (capture is
    /// impossible in our programs because generated binder names are
    /// unique; binders shadowing `name` stop the substitution).
    pub fn subst(&self, name: &str, with: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == name => with.clone(),
            Expr::Num(_) | Expr::Str(_) | Expr::Rel(_) | Expr::SetLit(_) | Expr::Var(_) => {
                self.clone()
            }
            Expr::Let { name: n, value, body } => Expr::Let {
                name: n.clone(),
                value: Box::new(value.subst(name, with)),
                body: if n == name { body.clone() } else { Box::new(body.subst(name, with)) },
            },
            Expr::Record(fields) => {
                Expr::Record(fields.iter().map(|(f, e)| (f.clone(), e.subst(name, with))).collect())
            }
            Expr::Field(e, f) => Expr::Field(Box::new(e.subst(name, with)), f.clone()),
            Expr::Lookup(d, k) => {
                Expr::Lookup(Box::new(d.subst(name, with)), Box::new(k.subst(name, with)))
            }
            Expr::Sum { var, domain, body } => Expr::Sum {
                var: var.clone(),
                domain: Box::new(domain.subst(name, with)),
                body: if var == name { body.clone() } else { Box::new(body.subst(name, with)) },
            },
            Expr::LamDict { var, domain, body } => Expr::LamDict {
                var: var.clone(),
                domain: Box::new(domain.subst(name, with)),
                body: if var == name { body.clone() } else { Box::new(body.subst(name, with)) },
            },
            Expr::Add(a, b) => Expr::add(a.subst(name, with), b.subst(name, with)),
            Expr::Mul(a, b) => Expr::mul(a.subst(name, with), b.subst(name, with)),
            Expr::Eq(a, b) => Expr::eq(a.subst(name, with), b.subst(name, with)),
        }
    }

    /// Number of AST nodes (a crude program-size metric).
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Num(_) | Expr::Str(_) | Expr::Var(_) | Expr::Rel(_) | Expr::SetLit(_) => 0,
            Expr::Let { value, body, .. } => value.size() + body.size(),
            Expr::Record(fs) => fs.iter().map(|(_, e)| e.size()).sum(),
            Expr::Field(e, _) => e.size(),
            Expr::Lookup(d, k) => d.size() + k.size(),
            Expr::Sum { domain, body, .. } | Expr::LamDict { domain, body, .. } => {
                domain.size() + body.size()
            }
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Eq(a, b) => a.size() + b.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_respects_shadowing() {
        let e = Expr::sum("x", Expr::Rel("R".into()), Expr::var("x"));
        assert!(!e.references("x")); // bound
        let e2 = Expr::sum("y", Expr::Rel("R".into()), Expr::var("x"));
        assert!(e2.references("x"));
        let l = Expr::let_("x", Expr::var("z"), Expr::var("x"));
        assert!(l.references("z"));
        assert!(!l.references("x"));
    }

    #[test]
    fn subst_stops_at_binders() {
        let e = Expr::sum("x", Expr::Rel("R".into()), Expr::add(Expr::var("x"), Expr::var("y")));
        let s = e.subst("y", &Expr::Num(5.0));
        assert!(!s.references("y"));
        let s2 = e.subst("x", &Expr::Num(5.0));
        assert_eq!(s2, e); // x is bound: unchanged
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::Num(1.0).size(), 1);
        assert_eq!(Expr::add(Expr::Num(1.0), Expr::Num(2.0)).size(), 3);
    }
}
