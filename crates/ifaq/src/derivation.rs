//! The §5.3 derivation, end to end: from a naive per-(f1,f2) aggregate
//! program over the join `Q = S ⋈ R ⋈ I` to the factorized program that
//! pushes the sums past the joins.
//!
//! The paper's relations: `S(i, s, u)`, `R(s, c)`, `I(i, p)` (Sales,
//! StoRes, Items). The covariance entry `M_cp = Σ_Q Q(x)·x.c·x.p` starts as
//! a triple-nested sum with join indicators and ends — after loop
//! factorization — as
//! `Σ_s S(s)·(Σ_r R(r)·[s.s=r.s]·r.c)·(Σ_i I(i)·[s.i=i.i]·i.p)`,
//! evaluated in `O(|S|·(|R|+|I|))` instead of `O(|S|·|R|·|I|)` by the
//! interpreter.

use crate::expr::Expr;

/// The naive `M_cp` program: a sum over the full cross product with join
/// indicator conditions (the paper's expression right after inlining `Q`).
pub fn mcp_naive() -> Expr {
    // Σ_{xs∈S} Σ_{xr∈R} Σ_{xi∈I}
    //   S(xs)*R(xr)*I(xi)*[xs.i=xi.i]*[xs.s=xr.s]*xr.c*xi.p
    let body = Expr::mul(
        Expr::mul(
            Expr::mul(
                Expr::mul(
                    Expr::mul(
                        Expr::mul(
                            Expr::lookup(Expr::Rel("S".into()), Expr::var("xs")),
                            Expr::lookup(Expr::Rel("R".into()), Expr::var("xr")),
                        ),
                        Expr::lookup(Expr::Rel("I".into()), Expr::var("xi")),
                    ),
                    Expr::eq(Expr::field(Expr::var("xs"), "i"), Expr::field(Expr::var("xi"), "i")),
                ),
                Expr::eq(Expr::field(Expr::var("xs"), "s"), Expr::field(Expr::var("xr"), "s")),
            ),
            Expr::field(Expr::var("xr"), "c"),
        ),
        Expr::field(Expr::var("xi"), "p"),
    );
    Expr::sum(
        "xs",
        Expr::Rel("S".into()),
        Expr::sum("xr", Expr::Rel("R".into()), Expr::sum("xi", Expr::Rel("I".into()), body)),
    )
}

/// The hand-derived factorized form the optimiser should reach (used to
/// document the target; the tests compare *semantics and cost*, not
/// syntax).
pub fn mcp_factorized() -> Expr {
    let vr = Expr::sum(
        "xr",
        Expr::Rel("R".into()),
        Expr::mul(
            Expr::mul(
                Expr::lookup(Expr::Rel("R".into()), Expr::var("xr")),
                Expr::eq(Expr::field(Expr::var("xs"), "s"), Expr::field(Expr::var("xr"), "s")),
            ),
            Expr::field(Expr::var("xr"), "c"),
        ),
    );
    let vi = Expr::sum(
        "xi",
        Expr::Rel("I".into()),
        Expr::mul(
            Expr::mul(
                Expr::lookup(Expr::Rel("I".into()), Expr::var("xi")),
                Expr::eq(Expr::field(Expr::var("xs"), "i"), Expr::field(Expr::var("xi"), "i")),
            ),
            Expr::field(Expr::var("xi"), "p"),
        ),
    );
    Expr::sum(
        "xs",
        Expr::Rel("S".into()),
        Expr::mul(Expr::mul(Expr::lookup(Expr::Rel("S".into()), Expr::var("xs")), vr), vi),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Interp, Val};
    use crate::rewrite::optimize;
    use fdb_data::{AttrType, Database, Relation, Schema, Value};

    /// The paper's example relations S(i, s, u), R(s, c), I(i, p).
    fn sri_db(ns: usize) -> Database {
        let mut db = Database::new();
        let mut s = Relation::new(Schema::of(&[
            ("i", AttrType::Int),
            ("s", AttrType::Int),
            ("u", AttrType::Double),
        ]));
        for k in 0..ns {
            s.push_row(&[
                Value::Int((k % 5) as i64),
                Value::Int((k % 3) as i64),
                Value::F64(k as f64),
            ])
            .unwrap();
        }
        let mut r = Relation::new(Schema::of(&[("s", AttrType::Int), ("c", AttrType::Double)]));
        for k in 0..3i64 {
            r.push_row(&[Value::Int(k), Value::F64(10.0 + k as f64)]).unwrap();
        }
        let mut i = Relation::new(Schema::of(&[("i", AttrType::Int), ("p", AttrType::Double)]));
        for k in 0..5i64 {
            i.push_row(&[Value::Int(k), Value::F64(2.0 * k as f64)]).unwrap();
        }
        db.add("S", s);
        db.add("R", r);
        db.add("I", i);
        db
    }

    /// Brute-force M_cp over the join.
    fn brute_mcp(db: &Database) -> f64 {
        let (s, r, i) = (db.get("S").unwrap(), db.get("R").unwrap(), db.get("I").unwrap());
        let mut acc = 0.0;
        for a in 0..s.len() {
            for b in 0..r.len() {
                for c in 0..i.len() {
                    if s.int_col(1)[a] == r.int_col(0)[b] && s.int_col(0)[a] == i.int_col(0)[c] {
                        acc += r.f64_col(1)[b] * i.f64_col(1)[c];
                    }
                }
            }
        }
        acc
    }

    #[test]
    fn naive_factorized_and_optimized_all_agree() {
        let db = sri_db(12);
        let expect = brute_mcp(&db);
        for prog in [mcp_naive(), mcp_factorized(), optimize(&mcp_naive())] {
            let mut interp = Interp::new(&db);
            let v = interp.eval(&prog).unwrap();
            assert_eq!(v, Val::Num(expect));
        }
    }

    #[test]
    fn optimizer_pushes_sums_past_joins() {
        // The optimized program must stop iterating the cross product:
        // iteration count drops from |S|·|R|·|I| toward |S|·(|R|+|I|).
        let db = sri_db(12);
        let naive = mcp_naive();
        let opt = optimize(&naive);
        let mut i1 = Interp::new(&db);
        i1.eval(&naive).unwrap();
        let mut i2 = Interp::new(&db);
        i2.eval(&opt).unwrap();
        let (n1, n2) = (i1.counter.iterations, i2.counter.iterations);
        // |S|=12, |R|=3, |I|=5: naive = 12 + 12·3 + 12·3·5 = 228;
        // factorized = 12 + 12·3 + 12·5 = 108.
        assert_eq!(n1, 228, "naive iteration count");
        assert_eq!(n2, 108, "optimized iteration count");
        assert!(i2.counter.muls < i1.counter.muls);
    }

    #[test]
    fn optimized_cost_scales_additively_not_multiplicatively() {
        // Doubling |S| doubles both, but the *gap* grows multiplicatively.
        let small = sri_db(6);
        let large = sri_db(24);
        let naive = mcp_naive();
        let opt = optimize(&naive);
        let ops = |db: &Database, e: &Expr| {
            let mut i = Interp::new(db);
            i.eval(e).unwrap();
            i.counter.total()
        };
        let ratio_naive = ops(&large, &naive) as f64 / ops(&small, &naive) as f64;
        let ratio_opt = ops(&large, &opt) as f64 / ops(&small, &opt) as f64;
        // Both scale ~4x in |S|, but the naive constant is much larger.
        assert!(ops(&large, &naive) > 2 * ops(&large, &opt));
        assert!((ratio_naive - ratio_opt).abs() < 1.0);
    }
}
