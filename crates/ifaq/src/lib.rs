//! # fdb-ifaq
//!
//! IFAQ (§5.3, Shaikhha et al., CGO 2020): a small unified DB+ML
//! intermediate language — dictionaries, records, sum and
//! dictionary-construction loops — plus a pipeline of equivalence-
//! preserving, rule-based transformations:
//!
//! * **loop factorization** — hoist loop-invariant multiplicands out of
//!   `Σ` (the distributivity rewrite that pushes aggregates past joins);
//! * **code motion / static memoization** — hoist expensive loop-invariant
//!   subexpressions into `let` bindings evaluated once;
//! * **schema specialisation** — unroll loops over statically known
//!   feature sets and turn dynamic dictionary lookups into static field
//!   accesses.
//!
//! The interpreter counts arithmetic/lookup operations, so the tests can
//! *measure* that each optimisation stage preserves semantics while
//! strictly reducing work — the §5.3 derivation of the factorized
//! covariance computation from a naive gradient-descent program is
//! reproduced end-to-end in [`derivation`].

pub mod derivation;
pub mod eval;
pub mod expr;
pub mod rewrite;

pub use eval::{Counter, Interp, Val};
pub use expr::Expr;
pub use rewrite::{factor_out_of_sums, hoist_invariants, optimize, unroll_static};
