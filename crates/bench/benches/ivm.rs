//! Criterion bench: per-update maintenance cost of the three IVM
//! strategies on the retailer stream (Fig 4 right).

use criterion::{criterion_group, criterion_main, Criterion};
use fdb_bench::fig4_ivm::{run, Strategy};
use fdb_datasets::{retailer, RetailerConfig};
use std::hint::black_box;

fn bench_ivm(c: &mut Criterion) {
    let ds = retailer(RetailerConfig::tiny());
    let mut g = c.benchmark_group("ivm_stream_600");
    g.sample_size(10);
    for strat in [Strategy::Fivm, Strategy::HigherOrder, Strategy::FirstOrder] {
        g.bench_function(strat.name(), |b| {
            b.iter(|| black_box(run(&ds, strat, 600, 1)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ivm);
criterion_main!(benches);
