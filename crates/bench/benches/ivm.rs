//! Criterion bench: per-update maintenance cost of the three IVM
//! strategies on the retailer stream (Fig 4 right), plus the unified
//! `MaintainableEngine` path in isolation: `FivmEngine::prepare` once,
//! then `apply_delta` per single-row insert.

use criterion::{criterion_group, criterion_main, Criterion};
use fdb_bench::fig4_ivm::{build_stream, run, Strategy};
use fdb_core::{covariance_batch, AggQuery, MaintainableEngine};
use fdb_datasets::{retailer, RetailerConfig};
use fdb_ivm::FivmEngine;
use std::hint::black_box;

fn bench_ivm(c: &mut Criterion) {
    let ds = retailer(RetailerConfig::tiny());
    let mut g = c.benchmark_group("ivm_stream_600");
    g.sample_size(10);
    for strat in [Strategy::Fivm, Strategy::HigherOrder, Strategy::FirstOrder] {
        g.bench_function(strat.name(), |b| {
            b.iter(|| black_box(run(&ds, strat, 600, 1)));
        });
    }
    // The unified maintenance path, end to end: prepare on the empty
    // catalog, then fold the whole delta stream through `apply_delta`.
    g.bench_function("fivm-maintainable-engine", |b| {
        let (empty, names, stream) = build_stream(&ds, 600);
        let cont: Vec<&str> = ds.features.continuous_with_response_refs();
        let q = AggQuery::new(&names, covariance_batch(&cont, &[]));
        b.iter(|| {
            let mut st = FivmEngine.prepare(&empty, &q).expect("prepare");
            for d in &stream {
                black_box(FivmEngine.apply_delta(&mut st, d).expect("delta"));
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ivm);
criterion_main!(benches);
