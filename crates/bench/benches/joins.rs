//! Criterion bench: worst-case-optimal join vs binary hash joins on the
//! triangle query (§3.2) — the width-measure story.

use criterion::{criterion_group, criterion_main, Criterion};
use fdb_data::{AttrType, Database, Relation, Schema, Value};
use fdb_factorized::hypergraph::Hypergraph;
use fdb_factorized::{EvalSpec, VarOrder};
use fdb_query::hash_join;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A random tripartite graph as three binary relations R(a,b), S(b,c),
/// T(a,c).
fn triangle_db(n: usize, edges: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut rel = |name: &str, x: &str, y: &str, rng: &mut StdRng| {
        let mut r = Relation::new(Schema::of(&[(x, AttrType::Int), (y, AttrType::Int)]));
        let mut seen = std::collections::HashSet::new();
        while seen.len() < edges {
            let t = (rng.gen_range(0..n as i64), rng.gen_range(0..n as i64));
            if seen.insert(t) {
                r.push_row(&[Value::Int(t.0), Value::Int(t.1)]).expect("typed");
            }
        }
        db.add(name, r);
    };
    rel("R", "a", "b", &mut rng);
    rel("S", "b", "c", &mut rng);
    rel("T", "a", "c", &mut rng);
    db
}

fn count_triangles_wcoj(db: &Database) -> i64 {
    let hg = Hypergraph::join_keys_plus(db, &["R", "S", "T"], &[]).expect("keys");
    let (a, b, c) = (hg.var_id("a").unwrap(), hg.var_id("b").unwrap(), hg.var_id("c").unwrap());
    let vo = VarOrder::chain(&hg, &[a, b, c]);
    let spec = EvalSpec::with_order(db, &["R", "S", "T"], hg, vo).expect("prepared");
    spec.count()
}

fn count_triangles_binary(db: &Database) -> i64 {
    // R ⋈ S materialized (the quadratic intermediate), then joined with T.
    let rs = hash_join(db.get("R").unwrap(), db.get("S").unwrap()).expect("join");
    let rst = hash_join(&rs, db.get("T").unwrap()).expect("join");
    rst.len() as i64
}

fn bench_triangle(c: &mut Criterion) {
    let db = triangle_db(120, 2_400, 5);
    assert_eq!(count_triangles_wcoj(&db), count_triangles_binary(&db));
    let mut g = c.benchmark_group("triangle_join");
    g.sample_size(10);
    g.bench_function("wcoj_leapfrog", |b| b.iter(|| black_box(count_triangles_wcoj(&db))));
    g.bench_function("binary_hash_joins", |b| b.iter(|| black_box(count_triangles_binary(&db))));
    g.finish();
}

criterion_group!(benches, bench_triangle);
criterion_main!(benches);
