//! Criterion bench: covariance batch, LMFAO vs classical engine (Fig 4
//! left / Fig 6 stages) on a small retailer instance.

use criterion::{criterion_group, criterion_main, Criterion};
use fdb_bench::fig4_speedup::as_classical;
use fdb_core::eval_agg_batch;
use fdb_core::{covariance_batch, AggQuery, Engine, EngineConfig, LmfaoEngine};
use fdb_datasets::{retailer, RetailerConfig};
use fdb_query::natural_join_all;
use std::hint::black_box;

fn bench_covariance(c: &mut Criterion) {
    let ds = retailer(RetailerConfig { locations: 12, dates: 20, items: 60, fill: 0.4, seed: 1 });
    let rels: Vec<&str> = ds.relation_refs();
    let cont: Vec<&str> = ds.features.continuous_with_response_refs();
    let cat: Vec<&str> = ds.features.categorical.iter().map(String::as_str).collect();
    let batch = covariance_batch(&cont, &cat);
    let q = AggQuery::new(&rels, batch.clone());
    let mut g = c.benchmark_group("covariance_batch");
    g.sample_size(10);
    // The view cache is bypassed: repeated iterations of one identical
    // query would otherwise measure cached result extraction, not the
    // engine execution this bench compares.
    for (name, cfg) in [
        ("lmfao_shared", EngineConfig { threads: 1, view_cache_bytes: 0, ..Default::default() }),
        (
            "lmfao_unshared",
            EngineConfig { share: false, threads: 1, view_cache_bytes: 0, ..Default::default() },
        ),
        ("lmfao_parallel4", EngineConfig { threads: 4, view_cache_bytes: 0, ..Default::default() }),
    ] {
        let engine = LmfaoEngine::with_config(cfg);
        g.bench_function(name, |b| b.iter(|| black_box(engine.run(&ds.db, &q).expect("batch"))));
    }
    let flat = natural_join_all(&ds.db, &rels).expect("join");
    let queries: Vec<_> = batch.aggs.iter().map(as_classical).collect();
    g.bench_function("classical_per_aggregate", |b| {
        b.iter(|| black_box(eval_agg_batch(&flat, &queries).expect("classical")))
    });
    g.finish();
}

criterion_group!(benches, bench_covariance);
criterion_main!(benches);
