//! Criterion bench: additive-inequality aggregates, naive vs sort+prefix
//! (§2.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdb_ineq::{sum_pairs_gt, sum_pairs_gt_naive};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_inequality(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut g = c.benchmark_group("inequality_aggregate");
    g.sample_size(10);
    for n in [1usize << 10, 1 << 12] {
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let f: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let gg: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(sum_pairs_gt_naive(&x, &f, &y, &gg, 1.5)))
        });
        g.bench_with_input(BenchmarkId::new("sort_prefix", n), &n, |b, _| {
            b.iter(|| black_box(sum_pairs_gt(&x, &f, &y, &gg, 1.5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inequality);
criterion_main!(benches);
