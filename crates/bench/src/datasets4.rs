//! The four evaluation datasets at bench scale (Retailer, Favorita, Yelp,
//! TPC-DS), with a `--scale` knob shared by the table binaries.

use fdb_datasets::{favorita, retailer, tpcds, yelp, Dataset};
use fdb_datasets::{FavoritaConfig, RetailerConfig, TpcdsConfig, YelpConfig};

/// Builds all four datasets. `scale` multiplies the default row counts
/// (1.0 ≈ 10⁵-row fact tables; use 0.05 for quick smoke runs).
pub fn all(scale: f64) -> Vec<Dataset> {
    vec![
        retailer(RetailerConfig::scaled(scale)),
        favorita(FavoritaConfig {
            dates: ((90.0 * scale.cbrt()).ceil() as usize).max(4),
            stores: ((30.0 * scale.cbrt()).ceil() as usize).max(2),
            items: ((200.0 * scale.cbrt()).ceil() as usize).max(10),
            basket: ((40.0 * scale.cbrt()).ceil() as usize).max(4),
            ..FavoritaConfig::default()
        }),
        yelp(YelpConfig {
            users: ((2_000.0 * scale).ceil() as usize).max(20),
            businesses: ((600.0 * scale).ceil() as usize).max(10),
            reviews: ((60_000.0 * scale).ceil() as usize).max(100),
            ..YelpConfig::default()
        }),
        tpcds(TpcdsConfig {
            customers: ((3_000.0 * scale).ceil() as usize).max(30),
            stores: ((25.0 * scale.cbrt()).ceil() as usize).max(3),
            items: ((400.0 * scale).ceil() as usize).max(20),
            dates: ((120.0 * scale.cbrt()).ceil() as usize).max(10),
            sales: ((80_000.0 * scale).ceil() as usize).max(200),
            ..TpcdsConfig::default()
        }),
    ]
}

/// Parses the first CLI argument as a scale factor (default 1.0).
pub fn scale_from_args() -> f64 {
    std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_builds_all_four() {
        let ds = all(0.01);
        assert_eq!(ds.len(), 4);
        let names: Vec<&str> = ds.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["Retailer", "Favorita", "Yelp", "TPC-DS"]);
        for d in &ds {
            assert!(d.db.total_rows() > 0, "{} empty", d.name);
        }
    }
}
