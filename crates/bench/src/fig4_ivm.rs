//! Figure 4 (right): maintenance throughput of the covariance matrix under
//! an insert stream into an initially empty retailer database — F-IVM vs
//! first-order and higher-order IVM, reported per decile of the stream.
//!
//! The stream is a sequence of single-row [`Delta`]s against an empty
//! catalog. F-IVM runs through the **unified maintenance path**
//! (`FivmEngine` behind `fdb_core::MaintainableEngine`: `prepare` on the
//! empty database, `apply_delta` per update); the first- and higher-order
//! baselines run through the same `Database`+`Delta` front door
//! ([`CovMaintainer`]) — no caller touches the crate-internal `StreamDb`
//! stream storage.

use fdb_core::{covariance_batch, AggQuery, MaintainableEngine};
use fdb_data::{Database, Delta, Relation};
use fdb_datasets::Dataset;
use fdb_ivm::{CovMaintainer, FivmEngine};

/// Which maintenance strategy to run (re-exported from `fdb-ivm`).
pub use fdb_ivm::IvmStrategy as Strategy;

/// Builds the experiment inputs: an empty catalog with the dataset's
/// schemas, and the insert stream — the dataset's tuples as single-row
/// [`Delta`]s, round-robin across relations (so all base relations grow
/// together, as in the paper's experiment), capped at `limit` updates.
pub fn build_stream(ds: &Dataset, limit: usize) -> (Database, Vec<&str>, Vec<Delta>) {
    let names: Vec<&str> = ds.relation_refs();
    let mut empty = Database::new();
    for name in &names {
        empty.add(*name, Relation::new(ds.db.get(name).expect("rel").schema().clone()));
    }
    let mut cursors = vec![0usize; names.len()];
    let mut stream = Vec::with_capacity(limit);
    'outer: loop {
        let mut progressed = false;
        for (ri, name) in names.iter().enumerate() {
            let rel = ds.db.get(name).expect("rel");
            if cursors[ri] < rel.len() {
                stream.push(Delta::insert(*name, rel.row_vec(cursors[ri])));
                cursors[ri] += 1;
                progressed = true;
                if stream.len() >= limit {
                    break 'outer;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    (empty, names, stream)
}

/// Throughput (tuples/second) per decile of the stream for one strategy.
pub fn run(ds: &Dataset, strategy: Strategy, limit: usize, deciles: usize) -> Vec<(f64, f64)> {
    let (empty, names, stream) = build_stream(ds, limit);
    let cont: Vec<&str> = ds.features.continuous_with_response_refs();
    let mut apply: Box<dyn FnMut(&Delta)> = match strategy {
        Strategy::Fivm => {
            // The unified path: F-IVM as a `MaintainableEngine`.
            let q = AggQuery::new(&names, covariance_batch(&cont, &[]));
            let mut st = FivmEngine.prepare(&empty, &q).expect("covariance query prepares");
            Box::new(move |d: &Delta| {
                FivmEngine.apply_delta(&mut st, d).expect("valid update");
            })
        }
        other => {
            // Root the view tree at the fact relation (index 0 in our
            // datasets), like the unified path roots at the largest.
            let mut m = CovMaintainer::new(&empty, &names, 0, &cont, other).expect("acyclic join");
            Box::new(move |d: &Delta| {
                m.apply_delta(d).expect("valid update");
            })
        }
    };
    let chunk = (stream.len() / deciles).max(1);
    let mut out = Vec::new();
    let mut done = 0usize;
    for part in stream.chunks(chunk) {
        let t0 = std::time::Instant::now();
        for d in part {
            apply(d);
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        done += part.len();
        out.push((done as f64 / stream.len() as f64, part.len() as f64 / secs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_datasets::{retailer, RetailerConfig};

    #[test]
    fn stream_round_robins_and_caps() {
        let ds = retailer(RetailerConfig::tiny());
        let (empty, names, stream) = build_stream(&ds, 50);
        assert_eq!(stream.len(), 50);
        assert_eq!(names.len(), 5);
        assert!(names.iter().all(|n| empty.get(n).unwrap().is_empty()));
        // The first five updates hit five different relations.
        let rels: Vec<&str> = stream[..5].iter().map(|d| d.relation.as_str()).collect();
        assert_eq!(rels, names);
    }

    #[test]
    fn fivm_beats_higher_order_beats_first_order() {
        let _guard = crate::timing_lock();
        // The Figure 4 (right) ordering: F-IVM's single ring-valued view
        // tree beats higher-order IVM's per-aggregate view trees, which
        // beat first-order IVM's per-aggregate delta-query re-evaluation.
        let ds = retailer(RetailerConfig::tiny());
        let avg = |v: &[(f64, f64)]| v.iter().map(|&(_, t)| t).sum::<f64>() / v.len() as f64;
        // Best of 2 runs per strategy to absorb scheduler noise.
        let best = |s: Strategy| (0..2).map(|_| avg(&run(&ds, s, 467, 2))).fold(0.0f64, f64::max);
        let fi = best(Strategy::Fivm);
        let ho = best(Strategy::HigherOrder);
        let fo = best(Strategy::FirstOrder);
        assert!(fi > 2.0 * ho, "F-IVM {fi:.0} tups/s must beat higher-order {ho:.0}");
        assert!(ho > fo, "higher-order {ho:.0} tups/s must beat first-order {fo:.0}");
    }

    #[test]
    fn strategies_converge_to_the_same_triple() {
        // All three maintainers fed the same 120-update stream hold the
        // same covariance triple (the Database+Delta front door keeps the
        // legacy agreement tests' guarantee).
        let ds = retailer(RetailerConfig::tiny());
        let (empty, names, stream) = build_stream(&ds, 120);
        let cont: Vec<&str> = ds.features.continuous_with_response_refs();
        let mut maints: Vec<CovMaintainer> =
            [Strategy::FirstOrder, Strategy::HigherOrder, Strategy::Fivm]
                .into_iter()
                .map(|s| CovMaintainer::new(&empty, &names, 0, &cont, s).unwrap())
                .collect();
        for d in &stream {
            for m in &mut maints {
                m.apply_delta(d).unwrap();
            }
        }
        let base = maints[0].triple();
        for m in &maints[1..] {
            let t = m.triple();
            assert!((t.c - base.c).abs() < 1e-6);
            for i in 0..base.s.len() {
                assert!((t.s[i] - base.s[i]).abs() < 1e-6 * (1.0 + base.s[i].abs()));
            }
        }
    }
}
