//! Figure 4 (right): maintenance throughput of the covariance matrix under
//! an insert stream into an initially empty retailer database — F-IVM vs
//! first-order and higher-order IVM, reported per decile of the stream.

use fdb_data::{Schema, Value};
use fdb_datasets::Dataset;
use fdb_ivm::{Fivm, FoIvm, HoIvm, StreamDb, TreeShape, Update};
use std::sync::Arc;

/// Which maintenance strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// First-order IVM (delta joins, no materialized views).
    FirstOrder,
    /// Higher-order IVM (one view tree per aggregate).
    HigherOrder,
    /// F-IVM (one covariance-ring view tree).
    Fivm,
}

impl Strategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::FirstOrder => "first-order IVM",
            Strategy::HigherOrder => "higher-order IVM",
            Strategy::Fivm => "F-IVM",
        }
    }
}

/// Builds the insert stream: the dataset's tuples, round-robin across
/// relations (so all base relations grow together, as in the paper's
/// experiment), capped at `limit` updates.
pub fn build_stream(ds: &Dataset, limit: usize) -> (Vec<Schema>, Vec<&str>, Vec<Update>) {
    let names: Vec<&str> = ds.relation_refs();
    let schemas: Vec<Schema> =
        names.iter().map(|n| ds.db.get(n).expect("rel").schema().clone()).collect();
    let mut cursors = vec![0usize; names.len()];
    let mut stream = Vec::with_capacity(limit);
    'outer: loop {
        let mut progressed = false;
        for (ri, name) in names.iter().enumerate() {
            let rel = ds.db.get(name).expect("rel");
            if cursors[ri] < rel.len() {
                let tuple: Vec<Value> = rel.row_vec(cursors[ri]);
                cursors[ri] += 1;
                stream.push(Update::insert(ri, tuple));
                progressed = true;
                if stream.len() >= limit {
                    break 'outer;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    (schemas, names, stream)
}

/// Throughput (tuples/second) per decile of the stream for one strategy.
pub fn run(ds: &Dataset, strategy: Strategy, limit: usize, deciles: usize) -> Vec<(f64, f64)> {
    let (schemas, names, stream) = build_stream(ds, limit);
    let cont: Vec<&str> = ds.features.continuous_with_response_refs();
    // Root the view tree at the fact relation (index 0 in our datasets).
    let shape = Arc::new(TreeShape::build(schemas.clone(), &names, 0).expect("acyclic"));
    let mut db = StreamDb::new(schemas);
    shape.register_indices(&mut db);
    FoIvm::register_indices(&shape, &mut db);
    let mut apply: Box<dyn FnMut(&StreamDb, &Update)> = match strategy {
        Strategy::FirstOrder => {
            let mut fo = FoIvm::new(Arc::clone(&shape), &cont);
            Box::new(move |db: &StreamDb, up: &Update| fo.apply(db, up))
        }
        Strategy::HigherOrder => {
            let mut ho = HoIvm::new(Arc::clone(&shape), &cont);
            Box::new(move |db: &StreamDb, up: &Update| ho.apply(db, up))
        }
        Strategy::Fivm => {
            let mut fi = Fivm::new(Arc::clone(&shape), &cont).expect("features resolved");
            Box::new(move |db: &StreamDb, up: &Update| fi.apply(db, up))
        }
    };
    let chunk = (stream.len() / deciles).max(1);
    let mut out = Vec::new();
    let mut done = 0usize;
    for part in stream.chunks(chunk) {
        let t0 = std::time::Instant::now();
        for up in part {
            db.apply(up).expect("valid update");
            apply(&db, up);
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        done += part.len();
        out.push((done as f64 / stream.len() as f64, part.len() as f64 / secs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_datasets::{retailer, RetailerConfig};

    #[test]
    fn stream_round_robins_and_caps() {
        let ds = retailer(RetailerConfig::tiny());
        let (schemas, names, stream) = build_stream(&ds, 50);
        assert_eq!(stream.len(), 50);
        assert_eq!(schemas.len(), 5);
        assert_eq!(names.len(), 5);
        // The first five updates hit five different relations.
        let rels: Vec<usize> = stream[..5].iter().map(|u| u.rel).collect();
        assert_eq!(rels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fivm_beats_higher_order_beats_first_order() {
        let _guard = crate::timing_lock();
        // The Figure 4 (right) ordering: F-IVM's single ring-valued view
        // tree beats higher-order IVM's per-aggregate view trees, which
        // beat first-order IVM's per-aggregate delta-query re-evaluation.
        let ds = retailer(RetailerConfig::tiny());
        let avg = |v: &[(f64, f64)]| v.iter().map(|&(_, t)| t).sum::<f64>() / v.len() as f64;
        // Best of 2 runs per strategy to absorb scheduler noise.
        let best = |s: Strategy| (0..2).map(|_| avg(&run(&ds, s, 467, 2))).fold(0.0f64, f64::max);
        let fi = best(Strategy::Fivm);
        let ho = best(Strategy::HigherOrder);
        let fo = best(Strategy::FirstOrder);
        assert!(fi > 2.0 * ho, "F-IVM {fi:.0} tups/s must beat higher-order {ho:.0}");
        assert!(ho > fo, "higher-order {ho:.0} tups/s must beat first-order {fo:.0}");
    }
}
