//! # fdb-bench
//!
//! The experiment harness: one runner per table/figure of the paper,
//! shared between the `src/bin` table binaries and the Criterion benches.
//! `EXPERIMENTS.md` at the workspace root records paper-vs-measured for
//! every experiment these runners regenerate.

pub mod datasets4;
pub mod fig3;
pub mod fig4_ivm;
pub mod fig4_speedup;
pub mod fig5;
pub mod fig6;
pub mod ineq_scaling;
pub mod perf;

use std::time::Instant;

/// Serializes wall-clock-sensitive measurements: the test runner executes
/// tests in parallel, and concurrent heavy tests skew each other's
/// timings. Timing-based assertions grab this lock first.
pub fn timing_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Times a closure, returning `(seconds, result)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Formats seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Formats a byte count human-readably.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1 << 10 {
        format!("{b} B")
    } else if b < 1 << 20 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else if b < 1 << 30 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.2} GB", b as f64 / (1 << 30) as f64)
    }
}

/// Prints a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> =
            cells.iter().enumerate().map(|(i, c)| format!("{c:<w$}", w = widths[i])).collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert!(fmt_secs(0.0000005).contains("µs"));
        assert!(fmt_secs(0.005).contains("ms"));
        assert!(fmt_secs(2.5).contains("s"));
        assert_eq!(fmt_bytes(512), "512 B");
        assert!(fmt_bytes(2048).contains("KB"));
        assert!(fmt_bytes(3 << 20).contains("MB"));
    }

    #[test]
    fn timing_returns_result() {
        let (secs, v) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
