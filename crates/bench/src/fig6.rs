//! Figure 6: the code-optimisation ablation. Baseline = unspecialized,
//! unshared, single-threaded evaluation of the covariance batch (AC/DC-
//! like); optimisations are added cumulatively: specialisation → sharing →
//! parallelisation, and the speedup over the baseline is reported.

use fdb_core::{covariance_batch, AggQuery, Engine, EngineConfig, LmfaoEngine};
use fdb_datasets::Dataset;

/// Cumulative configurations, in the figure's order. Every stage
/// bypasses the cross-batch view cache (`view_cache_bytes: 0`): the
/// `+sharing` and `+parallelisation` stages run the *same* plan, so with
/// the cache on the last stage would partly measure served views instead
/// of the parallel scan the figure is about.
pub fn stages(threads: usize) -> [(&'static str, EngineConfig); 4] {
    [
        // The baseline also runs without dense group indexing: code-indexed
        // accumulators are part of the "specialize to the data" toggle.
        (
            "baseline",
            EngineConfig {
                specialize: false,
                share: false,
                threads: 1,
                dense_limit: 0,
                view_cache_bytes: 0,
                ..Default::default()
            },
        ),
        (
            "+specialisation",
            EngineConfig {
                specialize: true,
                share: false,
                threads: 1,
                view_cache_bytes: 0,
                ..Default::default()
            },
        ),
        (
            "+sharing",
            EngineConfig {
                specialize: true,
                share: true,
                threads: 1,
                view_cache_bytes: 0,
                ..Default::default()
            },
        ),
        (
            "+parallelisation",
            EngineConfig {
                specialize: true,
                share: true,
                threads,
                view_cache_bytes: 0,
                ..Default::default()
            },
        ),
    ]
}

/// One ablation row: seconds per stage for a dataset.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// `(stage name, seconds)` in cumulative order.
    pub stage_secs: Vec<(&'static str, f64)>,
}

impl AblationRow {
    /// Speedups relative to the first (baseline) stage.
    pub fn speedups(&self) -> Vec<(&'static str, f64)> {
        let base = self.stage_secs[0].1;
        self.stage_secs.iter().map(|&(n, s)| (n, base / s.max(1e-12))).collect()
    }
}

/// Runs the ablation on one dataset.
pub fn measure(ds: &Dataset, threads: usize) -> AblationRow {
    let rels: Vec<&str> = ds.relation_refs();
    let cont: Vec<&str> = ds.features.continuous_with_response_refs();
    let cat: Vec<&str> = ds.features.categorical.iter().map(String::as_str).collect();
    let q = AggQuery::new(&rels, covariance_batch(&cont, &cat));
    let stage_secs = stages(threads)
        .into_iter()
        .map(|(name, cfg)| {
            let engine = LmfaoEngine::with_config(cfg);
            let (secs, _) = crate::time(|| engine.run(&ds.db, &q).expect("batch"));
            (name, secs)
        })
        .collect();
    AblationRow { dataset: ds.name, stage_secs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_datasets::{retailer, RetailerConfig};

    #[test]
    fn sharing_gives_a_clear_speedup() {
        let _guard = crate::timing_lock();
        let ds = retailer(RetailerConfig {
            locations: 10,
            dates: 16,
            items: 40,
            ..RetailerConfig::tiny()
        });
        let row = measure(&ds, 2);
        let speedups = row.speedups();
        assert_eq!(speedups[0].1, 1.0);
        // Sharing is the dominant effect in the figure; demand at least 2x
        // cumulative at the sharing stage.
        assert!(
            speedups[2].1 > 2.0,
            "cumulative speedup at +sharing: {:.2}x (stages {:?})",
            speedups[2].1,
            row.stage_secs
        );
    }
}
