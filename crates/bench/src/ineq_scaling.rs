//! §2.3 scaling experiment: additive-inequality aggregates, nested-loop vs
//! sort + prefix-sum, over growing input sizes — the quadratic/linearithmic
//! gap that motivates the new theta-join algorithms.

use fdb_ineq::{sum_pairs_gt, sum_pairs_gt_naive};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One measurement: per-side input size `n`, seconds for each algorithm.
#[derive(Debug, Clone)]
pub struct IneqRow {
    /// Rows per side.
    pub n: usize,
    /// Nested-loop seconds.
    pub naive_secs: f64,
    /// Sort + prefix-sum seconds.
    pub fast_secs: f64,
}

/// Runs both algorithms across a size sweep.
pub fn sweep(sizes: &[usize], seed: u64) -> Vec<IneqRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    sizes
        .iter()
        .map(|&n| {
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let f: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let g: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (naive_secs, a) = crate::time(|| sum_pairs_gt_naive(&x, &f, &y, &g, 1.5));
            let (fast_secs, b) = crate::time(|| sum_pairs_gt(&x, &f, &y, &g, 1.5));
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "algorithms disagree: {a} vs {b}");
            IneqRow { n, naive_secs, fast_secs }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_wins_and_gap_grows() {
        let _guard = crate::timing_lock();
        // Best-of-3 per cell: the fast side runs in microseconds and is
        // sensitive to scheduler noise when the test suite runs parallel.
        let runs: Vec<Vec<IneqRow>> = (0..3).map(|i| sweep(&[1000, 16_000], 3 + i)).collect();
        let best = |idx: usize| -> (f64, f64) {
            let naive = runs.iter().map(|r| r[idx].naive_secs).fold(f64::INFINITY, f64::min);
            let fast = runs.iter().map(|r| r[idx].fast_secs).fold(f64::INFINITY, f64::min);
            (naive, fast)
        };
        let (n0, f0) = best(0);
        let (n1, f1) = best(1);
        assert!(f1 < n1, "fast path must win at 16k: {f1} vs {n1}");
        // Quadratic vs linearithmic: 16x the input must widen the gap
        // clearly (theory predicts ~12x; demand 3x to absorb timer noise).
        let (r0, r1) = (n0 / f0.max(1e-12), n1 / f1.max(1e-12));
        assert!(r1 > 3.0 * r0, "speedup must grow: {r0:.1}x -> {r1:.1}x");
    }
}
