//! Figure 5: the number of aggregates per dataset × workload — the
//! quantity that makes the batch-evaluation problem interesting ("much
//! more than in a typical database query").

use fdb_core::{covariance_batch, decision_node_batch, kmeans_batch, mutual_info_batch};
use fdb_datasets::Dataset;

/// One row of the Figure 5 table.
#[derive(Debug, Clone)]
pub struct AggCountRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Covariance-matrix batch size.
    pub covariance: usize,
    /// Decision-tree-node batch size.
    pub decision_node: usize,
    /// Mutual-information batch size.
    pub mutual_info: usize,
    /// k-means batch size.
    pub kmeans: usize,
}

/// Computes the table row for one dataset using the same batch generators
/// the engine runs.
pub fn count_row(ds: &Dataset) -> AggCountRow {
    let cont: Vec<&str> = ds.features.continuous_with_response_refs();
    let cat: Vec<&str> = ds.features.categorical.iter().map(String::as_str).collect();
    AggCountRow {
        dataset: ds.name,
        covariance: covariance_batch(&cont, &cat).len(),
        decision_node: decision_node_batch(
            &cont[..cont.len() - 1],
            &cat,
            ds.features.response.as_str(),
            // The paper's tree learner considers ~20 thresholds per
            // continuous and the frequent categories per categorical.
            20,
            10,
            |_, j| j as f64,
        )
        .len(),
        mutual_info: mutual_info_batch(&cat).len(),
        kmeans: kmeans_batch(&cont).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets4;

    #[test]
    fn counts_have_figure5_magnitudes_and_ordering() {
        for ds in datasets4::all(0.01) {
            let row = count_row(&ds);
            // Hundreds-to-thousands for covariance and decision nodes,
            // dozens-to-hundreds for mutual information, dozens for
            // k-means — the figure's shape.
            assert!(row.covariance >= 50, "{}: {}", row.dataset, row.covariance);
            assert!(row.decision_node >= row.covariance / 2);
            assert!(row.mutual_info < row.covariance);
            assert!(row.kmeans < row.mutual_info + row.covariance);
            assert!(row.kmeans >= 5);
        }
    }
}
