//! The perf-regression harness behind the `perf_regression` binary.
//!
//! Runs the grouped-covariance and join-count benches at a fixed seed for
//! every engine, in two arms per engine:
//!
//! * **optimized** — the current defaults: dense code-indexed group
//!   accumulators, the cross-query sort cache, and (for the flat baseline)
//!   one shared scan per group-by set;
//! * **baseline-hash** — the pre-optimization configuration: hash-map
//!   accumulators (`dense_limit = 0` / the hash keyed ring), fresh sorts
//!   every run, one scan per aggregate.
//!
//! Both arms run in the same process on the same generated data, so the
//! emitted `BENCH_engines.json` carries its own before/after trajectory —
//! future PRs append their numbers instead of guessing what "before" was.
//! Each row records the engine, config arm, dataset, best wall time in
//! nanoseconds over the requested iterations, and the total number of
//! groups emitted (a cheap cross-arm agreement checksum).

use fdb_core::{
    covariance_batch, to_scan_query, AggQuery, Engine, EngineConfig, FactorizedEngine, FlatEngine,
    LmfaoEngine, ShardedEngine, ViewCache,
};
use fdb_core::{eval_agg_batch, ScanQuery};
use fdb_data::SortCache;
use fdb_datasets::{retailer, zipf_snowflake, Dataset, RetailerConfig, ZipfConfig};
use fdb_ml::tree::{DecisionTree, TreeConfig};
use fdb_query::natural_join_all;

/// One measurement row of `BENCH_engines.json`.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Bench name: `grouped-covariance` or `join-count`.
    pub bench: &'static str,
    /// Engine name (`lmfao`, `factorized`, `flat`, `sharded-lmfao`).
    pub engine: &'static str,
    /// Arm: `optimized` / `baseline-hash`, or — for the sharding rows —
    /// `sharded` (one shard per worker) / `single-shard` (the wrapper's
    /// 1-partition configuration, which short-circuits to the unwrapped
    /// inner engine: no partition, no merge — i.e. "not sharding at all",
    /// the baseline the sharded arm's speedup is measured against).
    pub config: &'static str,
    /// Dataset label.
    pub dataset: String,
    /// Best wall time over the iterations, in nanoseconds.
    pub wall_ns: u128,
    /// Total groups emitted across the batch (agreement checksum).
    pub groups: usize,
    /// Worker fan-out of the row (shard/thread count; 1 = sequential).
    pub threads: usize,
    /// Morsel size (rows per work unit) in effect for the row.
    pub morsel_rows: usize,
    /// Cores available on the measuring host (`default_threads()`): the
    /// context a row's `threads` and any cross-host comparison of its
    /// parallel speedups must be read against — a 1-core CI runner cannot
    /// show shard scaling no matter what the code does.
    pub available_cores: usize,
}

/// Sort accounting of one CART training run (the "sorts each relation at
/// most once per fit" acceptance check).
#[derive(Debug, Clone, Default)]
pub struct CartSorts {
    /// Relations in the feature extraction join.
    pub relations: usize,
    /// Actual sorts during the first fit.
    pub first_fit_sorts: u64,
    /// Additional sorts during a second, identical fit (0 = fully cached).
    pub second_fit_sorts: u64,
    /// Leaves of the fitted tree — evidence the trainer actually ran many
    /// per-node batches over the cached views.
    pub leaves: usize,
}

/// View-cache accounting of one CART training pair on the LMFAO engine —
/// the `cart-retailer` arm: a **cold** fit (view cache cleared first) and
/// an identical **warm** fit. Within the cold fit, residual-filter reuse
/// must already serve every subtree a node's split filters do not touch
/// (`views_rescanned` strictly below `view_lookups`); the warm fit must
/// be served entirely from the cache.
#[derive(Debug, Clone, Default)]
pub struct CartViewReuse {
    /// Engine batches run by the cold fit (one per tree node + the
    /// candidate-statistics batch).
    pub batches_run: usize,
    /// Leaves of the fitted tree.
    pub leaves: usize,
    /// Total view lookups during the cold fit (`reused + rescanned`) —
    /// the "nodes × views-per-batch" bill a cache-less engine pays.
    pub view_lookups: u64,
    /// Views served from cache during the cold fit (cross-node residual
    /// reuse).
    pub views_reused: u64,
    /// Views actually materialized during the cold fit.
    pub views_rescanned: u64,
    /// Views rescanned by the identical warm fit (0 = fully cached).
    pub warm_views_rescanned: u64,
    /// Wall time of the cold fit, nanoseconds.
    pub cold_wall_ns: u128,
    /// Wall time of the warm fit, nanoseconds.
    pub warm_wall_ns: u128,
}

impl CartViewReuse {
    /// Fraction of cold-fit view lookups served from cache.
    pub fn reuse_ratio(&self) -> f64 {
        if self.view_lookups == 0 {
            0.0
        } else {
            self.views_reused as f64 / self.view_lookups as f64
        }
    }

    /// Cold wall time over warm wall time (the cached-vs-cold training
    /// speedup).
    pub fn warm_speedup(&self) -> f64 {
        self.cold_wall_ns as f64 / self.warm_wall_ns.max(1) as f64
    }
}

/// Which arms [`run_all`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arms {
    /// Both arms (the default: speedups are computable from one run).
    Both,
    /// Only the pre-optimization arm (`--baseline-hash`).
    BaselineOnly,
    /// Only the optimized arm (`--optimized`).
    OptimizedOnly,
}

impl Arms {
    fn includes(self, config: &str) -> bool {
        match self {
            Arms::Both => true,
            Arms::BaselineOnly => config == "baseline-hash",
            Arms::OptimizedOnly => config == "optimized",
        }
    }
}

/// The fixed-seed retailer instance of the harness; `scale = 1.0` is the
/// test scale the CI step runs.
pub fn perf_dataset(scale: f64) -> Dataset {
    let base = RetailerConfig { locations: 14, dates: 20, items: 60, fill: 0.5, seed: 7 };
    retailer(RetailerConfig {
        locations: ((base.locations as f64) * scale.cbrt()).ceil() as usize,
        dates: ((base.dates as f64) * scale.cbrt()).ceil() as usize,
        items: ((base.items as f64) * scale.cbrt()).ceil() as usize,
        ..base
    })
}

/// The grouped-covariance batch of the harness (Figure 5 shape: continuous
/// moments, continuous–categorical interactions, categorical pairs).
pub fn covariance_query(ds: &Dataset) -> AggQuery {
    let rels: Vec<&str> = ds.relation_refs();
    let batch = covariance_batch(
        &["prize", "maxtemp", "population", "inventoryunits"],
        &["rain", "category", "categoryCluster"],
    );
    AggQuery::new(&rels, batch)
}

/// The join-cardinality query (a single `COUNT(*)` through the same IR).
pub fn join_count_query(ds: &Dataset) -> AggQuery {
    let rels: Vec<&str> = ds.relation_refs();
    AggQuery::new(&rels, {
        let mut b = fdb_core::AggBatch::new();
        b.push(fdb_core::Aggregate::count());
        b
    })
}

fn total_groups(res: &fdb_core::BatchResult) -> usize {
    (0..res.values.len()).map(|i| res.grouped(i).len()).sum()
}

/// Times `engine` on `q`, returning the best wall time and the checksum.
fn time_engine(ds: &Dataset, q: &AggQuery, engine: &dyn Engine, iters: usize) -> (u128, usize) {
    let mut best = u128::MAX;
    let mut groups = 0;
    for _ in 0..iters.max(1) {
        let t0 = std::time::Instant::now();
        let res = engine.run(&ds.db, q).expect("perf query is well-formed");
        best = best.min(t0.elapsed().as_nanos());
        groups = total_groups(&res);
    }
    (best, groups)
}

/// Times the pre-optimization flat path: materialized join plus **one scan
/// per aggregate** (the accidental quadratic the shared-scan fix removed).
fn time_flat_per_agg(ds: &Dataset, q: &AggQuery, iters: usize) -> (u128, usize) {
    let mut best = u128::MAX;
    let mut groups = 0;
    for _ in 0..iters.max(1) {
        let t0 = std::time::Instant::now();
        let flat = natural_join_all(&ds.db, &q.relation_refs()).expect("join");
        let queries: Vec<ScanQuery> = q.batch.aggs.iter().map(to_scan_query).collect();
        let res = eval_agg_batch(&flat, &queries).expect("classical batch");
        best = best.min(t0.elapsed().as_nanos());
        groups = res.iter().map(|m| m.values().filter(|&&v| v != 0.0).count()).sum();
    }
    (best, groups)
}

/// Runs every bench × engine × arm combination with the default shard
/// fan-out (one shard per available core).
pub fn run_all(scale: f64, iters: usize, arms: Arms) -> Vec<PerfRow> {
    run_all_with_shards(scale, iters, arms, fdb_core::parallel::default_threads())
}

/// [`run_all`] with an explicit shard count for the sharded arm.
///
/// Besides the per-engine optimized / baseline-hash arms, the `Both` mode
/// (only — the single-arm modes skip the pair) measures a **sharded vs
/// single-shard** pair: `ShardedEngine<LmfaoEngine>` (inner engine
/// single-threaded, so the pair isolates shard-level data parallelism)
/// over `shards` partitions vs the 1-partition configuration, which
/// short-circuits to the plain unwrapped engine. Their ratio is therefore
/// "sharding vs not sharding": cross-core scaling on a multi-core host;
/// pure partition+merge+redundant-dimension-scan overhead (< 1×) on a
/// single core. With the small-fact fallback
/// ([`fdb_core::DEFAULT_MIN_ROWS_PER_SHARD`]) the sharded arm declines
/// to shard facts whose per-shard row count is below the threshold — the
/// test-scale retailer lands there, so the pair records ≈ 1× (the
/// fallback fix) instead of the former < 1× overhead regression; larger
/// `--scale` values shard for real.
pub fn run_all_with_shards(scale: f64, iters: usize, arms: Arms, shards: usize) -> Vec<PerfRow> {
    let ds = perf_dataset(scale);
    let label = format!("retailer-x{scale}");
    let mut rows = Vec::new();
    // The cross-batch view cache is bypassed in every timed engine row:
    // with it on, iterations after the first would measure cached result
    // extraction instead of execution, washing out the signal each pair
    // isolates (dense-vs-hash accumulators; sharded-vs-single-shard).
    // The cache's own win is measured by the `cart-retailer` arm
    // ([`cart_view_reuse`]), where cold-vs-warm is the point.
    let lmfao_opt = LmfaoEngine::with_config(EngineConfig {
        threads: 1,
        view_cache_bytes: 0,
        ..Default::default()
    });
    let lmfao_base = LmfaoEngine::with_config(EngineConfig {
        threads: 1,
        dense_limit: 0,
        view_cache_bytes: 0,
        ..Default::default()
    });
    let sharded = ShardedEngine::with_shards(lmfao_opt, shards.max(1));
    let single_shard = ShardedEngine::with_shards(lmfao_opt, 1);
    for (bench, q) in
        [("grouped-covariance", covariance_query(&ds)), ("join-count", join_count_query(&ds))]
    {
        // Skipped arms are never timed — `--optimized` exists precisely to
        // avoid paying for the slow baseline configurations at large scale.
        type Run<'a> = (&'static str, &'static str, usize, Box<dyn Fn() -> (u128, usize) + 'a>);
        let runs: Vec<Run> = vec![
            ("lmfao", "optimized", 1, Box::new(|| time_engine(&ds, &q, &lmfao_opt, iters))),
            ("lmfao", "baseline-hash", 1, Box::new(|| time_engine(&ds, &q, &lmfao_base, iters))),
            (
                "factorized",
                "optimized",
                1,
                Box::new(|| time_engine(&ds, &q, &FactorizedEngine::new(), iters)),
            ),
            (
                "factorized",
                "baseline-hash",
                1,
                Box::new(|| time_engine(&ds, &q, &FactorizedEngine::baseline_hash(), iters)),
            ),
            ("flat", "optimized", 1, Box::new(|| time_engine(&ds, &q, &FlatEngine, iters))),
            ("flat", "baseline-hash", 1, Box::new(|| time_flat_per_agg(&ds, &q, iters))),
            (
                "sharded-lmfao",
                "sharded",
                shards.max(1),
                Box::new(|| time_engine(&ds, &q, &sharded, iters)),
            ),
            (
                "sharded-lmfao",
                "single-shard",
                1,
                Box::new(|| time_engine(&ds, &q, &single_shard, iters)),
            ),
        ];
        for (engine, config, threads, run) in &runs {
            if arms.includes(config) {
                let (wall_ns, groups) = run();
                rows.push(PerfRow {
                    bench,
                    engine,
                    config,
                    dataset: label.clone(),
                    wall_ns,
                    groups,
                    threads: *threads,
                    morsel_rows: fdb_core::DEFAULT_MORSEL_ROWS,
                    available_cores: fdb_core::parallel::default_threads(),
                });
            }
        }
    }
    // Sharded-vs-single-shard on the *clustered* Zipf snowflake. The
    // retailer draws fact keys i.i.d., so equal-row shards get
    // statistically identical work; this dataset sorts the fact by its
    // power-law key, giving contiguous shards very different group
    // structure — the skew shape the morsel over-partitioning (work units
    // drained by the stealing loop) exists for.
    if arms == Arms::Both {
        let zds = zipf_snowflake(ZipfConfig {
            fact_rows: ((40_000.0 * scale).ceil() as usize).max(1_000),
            ..Default::default()
        });
        let zq = {
            let rels: Vec<&str> = zds.relation_refs();
            AggQuery::new(&rels, covariance_batch(&["a", "b", "v"], &["grp"]))
        };
        let zlabel = format!("zipf-snowflake-x{scale}");
        for (config, engine, threads) in
            [("sharded", &sharded, shards.max(1)), ("single-shard", &single_shard, 1)]
        {
            let (wall_ns, groups) = time_engine(&zds, &zq, engine, iters);
            rows.push(PerfRow {
                bench: "grouped-covariance-zipf",
                engine: "sharded-lmfao",
                config,
                dataset: zlabel.clone(),
                wall_ns,
                groups,
                threads,
                morsel_rows: fdb_core::DEFAULT_MORSEL_ROWS,
                available_cores: fdb_core::parallel::default_threads(),
            });
        }
    }
    rows.extend(kernel_microbench(iters, arms));
    rows
}

/// Best wall time of `iters` runs of `f`, plus `f`'s last return value.
fn best_of(iters: usize, mut f: impl FnMut() -> usize) -> (u128, usize) {
    let mut best = u128::MAX;
    let mut checksum = 0;
    for _ in 0..iters.max(1) {
        let t0 = std::time::Instant::now();
        checksum = f();
        best = best.min(t0.elapsed().as_nanos());
    }
    (best, checksum)
}

/// The per-kernel microbench: each of the eight hot-loop kernels timed in
/// its optimized form (`optimized`) against its row-wise / per-slot /
/// serial twin (`baseline-hash`) on identical synthetic inputs, one row
/// per arm.
/// Single-threaded by construction — these isolate instruction-level
/// parallelism, not the scheduler; the `groups` checksum must agree
/// between the two arms of each kernel.
pub fn kernel_microbench(iters: usize, arms: Arms) -> Vec<PerfRow> {
    use fdb_core::{kernel, GroupIndex, KeySpace};
    use fdb_factorized::trie::{collect_pair, leapfrog_intersect};
    use fdb_ring::{CovRing, DenseKeyedRing, F64Ring, Semiring};

    let mut rows = Vec::new();
    let mut push = |engine, config, n: usize, (wall_ns, groups): (u128, usize)| {
        rows.push(PerfRow {
            bench: "kernel-microbench",
            engine,
            config,
            dataset: format!("synthetic-{n}rows"),
            wall_ns,
            groups,
            threads: 1,
            morsel_rows: fdb_core::DEFAULT_MORSEL_ROWS,
            available_cores: fdb_core::parallel::default_threads(),
        });
    };

    // GroupIndex accumulation: batched code computation + payload add vs
    // the per-row key/encode/scatter loop. Keys from a cheap LCG over an
    // 8×8×8×8 dense space — a four-attribute group-by, the shape where
    // per-row mixed-radix encoding is a real fraction of the loop. The
    // scatter itself is shared between the arms, so the measured gap is
    // the encode (and stays modest next to the O(n)-vs-O(n²) kernels).
    const ACC_ROWS: usize = 1 << 17;
    let space = KeySpace::new(&[(0, 7); 4], 1 << 20).expect("dense space");
    let (mut c1, mut c2, mut c3, mut c4, mut vals) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for i in 0..ACC_ROWS {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        c1.push(((state >> 33) & 7) as i64);
        c2.push(((state >> 23) & 7) as i64);
        c3.push(((state >> 13) & 7) as i64);
        c4.push(((state >> 3) & 7) as i64);
        vals.push((i % 97) as f64 * 0.5);
    }
    if arms.includes("optimized") {
        let timed = best_of(iters, || {
            let mut acc = GroupIndex::dense(space.clone(), 1);
            let (mut codes, mut oob) = (Vec::new(), Vec::new());
            let mut lo = 0;
            while lo < ACC_ROWS {
                let hi = (lo + fdb_core::DEFAULT_MORSEL_ROWS).min(ACC_ROWS);
                let cols = [&c1[lo..hi], &c2[lo..hi], &c3[lo..hi], &c4[lo..hi]];
                kernel::encode_codes(&space, &cols, hi - lo, &mut codes, &mut oob);
                acc.add_codes(&codes, 0, &vals[lo..hi]);
                lo = hi;
            }
            acc.len()
        });
        push("group-accumulate", "optimized", ACC_ROWS, timed);
    }
    if arms.includes("baseline-hash") {
        let timed = best_of(iters, || {
            let mut acc = GroupIndex::dense(space.clone(), 1);
            let mut key = Vec::with_capacity(4);
            for r in 0..ACC_ROWS {
                key.clear();
                key.push(c1[r]);
                key.push(c2[r]);
                key.push(c3[r]);
                key.push(c4[r]);
                acc.payload_mut(&key)[0] += vals[r];
            }
            acc.len()
        });
        push("group-accumulate", "baseline-hash", ACC_ROWS, timed);
    }

    // DenseKeyedRing merge: the leapfrog-order accumulation shape — many
    // single-entry elements arriving in ascending (mask, code) order. The
    // optimized arm is the `add_assign` append fast path (amortized O(n));
    // the baseline re-merges through `add` every step (O(n²)).
    const MERGE_PARTS: usize = 4_000;
    let ring =
        DenseKeyedRing::new(F64Ring, &[(0, MERGE_PARTS as i64 - 1)]).expect("dense key range");
    let parts: Vec<_> = (0..MERGE_PARTS).map(|v| ring.tag(0, v as i64, 1.5)).collect();
    if arms.includes("optimized") {
        let timed = best_of(iters, || {
            let mut acc = ring.zero();
            for p in &parts {
                ring.add_assign(&mut acc, p);
            }
            acc.len()
        });
        push("ring-merge", "optimized", MERGE_PARTS, timed);
    }
    if arms.includes("baseline-hash") {
        let timed = best_of(iters, || {
            let mut acc = ring.zero();
            for p in &parts {
                acc = ring.add(&acc, p);
            }
            acc.len()
        });
        push("ring-merge", "baseline-hash", MERGE_PARTS, timed);
    }

    // Leapfrog key intersection: the batched two-pointer pair collector vs
    // the generic callback leapfrog, over sorted columns with short
    // duplicate runs and a dense overlap.
    const ISECT_ROWS: usize = 1 << 16;
    let a: Vec<i64> = (0..ISECT_ROWS).map(|i| (i / 3) as i64 * 2).collect();
    let b: Vec<i64> = (0..ISECT_ROWS).map(|i| (i / 2) as i64).collect();
    if arms.includes("optimized") {
        let timed = best_of(iters, || {
            let (mut vals, mut runs) = (Vec::new(), Vec::new());
            collect_pair(&a, 0..ISECT_ROWS, &b, 0..ISECT_ROWS, &mut vals, &mut runs);
            vals.len()
        });
        push("intersect", "optimized", ISECT_ROWS, timed);
    }
    if arms.includes("baseline-hash") {
        let timed = best_of(iters, || {
            let (mut vals, mut runs) = (Vec::new(), Vec::new());
            leapfrog_intersect(&[&a, &b], &[0..ISECT_ROWS, 0..ISECT_ROWS], |v, rs| {
                vals.push(v);
                runs.extend_from_slice(rs);
                true
            });
            vals.len()
        });
        push("intersect", "baseline-hash", ISECT_ROWS, timed);
    }

    // Covariance payload update: the fused sparse lift-and-add vs
    // lift-then-add-assign (which allocates two triples per row).
    const COV_ROWS: usize = 1 << 15;
    let cov = CovRing::new(16);
    let idx = [0usize, 5, 9, 14];
    let row_vals =
        |r: usize| [(r % 7) as f64, (r % 11) as f64 * 0.25, (r % 5) as f64 - 2.0, (r % 3) as f64];
    if arms.includes("optimized") {
        let timed = best_of(iters, || {
            let mut acc = cov.zero();
            for r in 0..COV_ROWS {
                cov.add_lift_sparse(&mut acc, &idx, &row_vals(r));
            }
            acc.dim()
        });
        push("cov-update", "optimized", COV_ROWS, timed);
    }
    if arms.includes("baseline-hash") {
        let timed = best_of(iters, || {
            let mut acc = cov.zero();
            for r in 0..COV_ROWS {
                cov.add_assign(&mut acc, &cov.lift_sparse(&idx, &row_vals(r)));
            }
            acc.dim()
        });
        push("cov-update", "baseline-hash", COV_ROWS, timed);
    }

    // Multi-slot scatter: MULTI_SLOTS aggregates per group — the LMFAO
    // batch shape (a 4-feature covariance batch is 15 slots wide) — over
    // a code space whose payload matrix (2¹⁸ codes × 16 slots = 32 MiB)
    // dwarfs L2, so every payload touch is a cache miss. The optimized
    // arm walks the codes once and lands all 16 slot updates on two
    // contiguous cache lines per group per row (`add_codes_multi`); the
    // baseline re-walks the code buffer once per slot (`add_codes` ×
    // MULTI_SLOTS), re-missing those same lines on every pass.
    // Accumulators are reused across iterations (rebuilding would time
    // the 32 MiB zeroing, not the scatter).
    const MULTI_SLOTS: usize = 16;
    const MULTI_SPACE: u64 = 1 << 18;
    let mspace = KeySpace::new(&[(0, MULTI_SPACE as i64 - 1)], MULTI_SPACE).expect("multi space");
    let mut mcol = Vec::with_capacity(ACC_ROWS);
    for _ in 0..ACC_ROWS {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        mcol.push(((state >> 20) % MULTI_SPACE) as i64);
    }
    let mut mvals = vec![0.0f64; MULTI_SLOTS * ACC_ROWS];
    for s in 0..MULTI_SLOTS {
        for r in 0..ACC_ROWS {
            mvals[s * ACC_ROWS + r] = ((r + s) % 89) as f64 * 0.25;
        }
    }
    let mut macc_multi = GroupIndex::dense(mspace.clone(), MULTI_SLOTS);
    let mut macc_slot = GroupIndex::dense(mspace.clone(), MULTI_SLOTS);
    if arms.includes("optimized") {
        let timed = best_of(iters, || {
            let (mut codes, mut oob) = (Vec::new(), Vec::new());
            kernel::encode_codes(&mspace, &[&mcol], ACC_ROWS, &mut codes, &mut oob);
            macc_multi.add_codes_multi(&codes, &mvals);
            macc_multi.len()
        });
        push("group-accumulate-multi", "optimized", ACC_ROWS, timed);
    }
    if arms.includes("baseline-hash") {
        let timed = best_of(iters, || {
            let (mut codes, mut oob) = (Vec::new(), Vec::new());
            kernel::encode_codes(&mspace, &[&mcol], ACC_ROWS, &mut codes, &mut oob);
            for s in 0..MULTI_SLOTS {
                macc_slot.add_codes(&codes, s, &mvals[s * ACC_ROWS..(s + 1) * ACC_ROWS]);
            }
            macc_slot.len()
        });
        push("group-accumulate-multi", "baseline-hash", ACC_ROWS, timed);
    }

    // Fused encode+scatter: the single-pass leaf-scan kernel that never
    // materializes the code buffer vs the row-wise twin the engine keeps
    // behind `vectorize = false` — per-row key assembly, per-row encode,
    // slot-wise add. (The buffered batched kernel sits between the two;
    // this pair, like every other, benches the fast path against the
    // scalar shape it replaces.)
    if arms.includes("optimized") {
        let timed = best_of(iters, || {
            let mut acc = GroupIndex::dense(space.clone(), 2);
            let cols = [&c1[..], &c2[..], &c3[..], &c4[..]];
            kernel::encode_scatter(&cols, ACC_ROWS, &mvals[..2 * ACC_ROWS], &mut acc);
            acc.len()
        });
        push("fused-encode-scatter", "optimized", ACC_ROWS, timed);
    }
    if arms.includes("baseline-hash") {
        let timed = best_of(iters, || {
            let mut acc = GroupIndex::dense(space.clone(), 2);
            for r in 0..ACC_ROWS {
                let key = [c1[r], c2[r], c3[r], c4[r]];
                acc.add(&key, &[mvals[r], mvals[ACC_ROWS + r]]);
            }
            acc.len()
        });
        push("fused-encode-scatter", "baseline-hash", ACC_ROWS, timed);
    }

    // Radix-partitioned scatter: a 2²¹-code group space — three orders of
    // magnitude past the default `dense_limit`, so without this PR these
    // groups never got a dense accumulator at all and fell back to the
    // per-row hash path. The optimized arm is the new capability (dense
    // accumulation with the scatter bucket-sorted into L2-sized code
    // windows, so the cache footprint stays bounded no matter how wide
    // the space); the baseline is the hash accumulation that previously
    // served spaces this size. Both arms reuse accumulators allocated
    // outside the timed closure (`reset`-by-rebuild would time the 32 MiB
    // zeroing, not the scatter).
    const PART_ROWS: usize = 1 << 18;
    const PART_SPACE: u64 = 1 << 21;
    const PART_BUCKET: u64 = 1 << 15;
    let pspace = KeySpace::new(&[(0, PART_SPACE as i64 - 1)], PART_SPACE).expect("large space");
    let mut pcol = Vec::with_capacity(PART_ROWS);
    let mut pvals = Vec::with_capacity(2 * PART_ROWS);
    for _ in 0..PART_ROWS {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        pcol.push(((state >> 20) % PART_SPACE) as i64);
    }
    for i in 0..2 * PART_ROWS {
        pvals.push((i % 101) as f64 * 0.125);
    }
    let mut part_acc = GroupIndex::dense(pspace.clone(), 2);
    let mut hash_acc = GroupIndex::hash(2);
    let mut pscratch = fdb_core::ScatterScratch::default();
    if arms.includes("optimized") {
        let timed = best_of(iters, || {
            let (mut codes, mut oob) = (Vec::new(), Vec::new());
            kernel::encode_codes(&pspace, &[&pcol], PART_ROWS, &mut codes, &mut oob);
            part_acc.add_codes_multi_partitioned(&codes, &pvals, PART_BUCKET, &mut pscratch);
            part_acc.len()
        });
        push("partitioned-scatter", "optimized", PART_ROWS, timed);
    }
    if arms.includes("baseline-hash") {
        let timed = best_of(iters, || {
            for (r, &k) in pcol.iter().enumerate() {
                hash_acc.add(&[k], &[pvals[r], pvals[PART_ROWS + r]]);
            }
            hash_acc.len()
        });
        push("partitioned-scatter", "baseline-hash", PART_ROWS, timed);
    }

    // Parallel-merge shape: combining K interleaved-key partials (the
    // shard/morsel merge) by balanced pairwise tree (`tree_sum`) vs the
    // serial coordinator fold. Keys congruent `i mod K`, so every serial
    // step re-merges the whole accumulator — O(total·K) — while the tree
    // touches each entry log₂ K times. Core-count independent: this is
    // the merge *kernel*, not the scheduler.
    const MERGE_K: usize = 64;
    const MERGE_PER_PART: usize = 256;
    let mring = DenseKeyedRing::new(F64Ring, &[(0, (MERGE_K * MERGE_PER_PART) as i64 - 1)])
        .expect("dense key range");
    let mparts: Vec<_> = (0..MERGE_K)
        .map(|p| {
            let mut e = mring.zero();
            for v in 0..MERGE_PER_PART {
                mring.add_assign(&mut e, &mring.tag(0, (v * MERGE_K + p) as i64, 1.0));
            }
            e
        })
        .collect();
    if arms.includes("optimized") {
        let timed = best_of(iters, || fdb_ring::tree_sum(&mring, mparts.iter().cloned()).len());
        push("parallel-merge", "optimized", MERGE_K * MERGE_PER_PART, timed);
    }
    if arms.includes("baseline-hash") {
        let timed = best_of(iters, || fdb_ring::sum(&mring, mparts.iter().cloned()).len());
        push("parallel-merge", "baseline-hash", MERGE_K * MERGE_PER_PART, timed);
    }
    rows
}

/// Trains the same small CART regression tree twice with the factorized
/// engine and reports the sort counts per fit via the global
/// [`SortCache`] statistics.
pub fn cart_sort_accounting(scale: f64) -> CartSorts {
    let ds = perf_dataset(scale);
    let rels: Vec<&str> = ds.relation_refs();
    let cache = SortCache::global();
    let misses =
        || -> u64 { rels.iter().map(|r| cache.stats_for(ds.db.get(r).expect("exists")).1).sum() };
    let fit = || {
        DecisionTree::fit_regression(
            &ds.db,
            &rels,
            &["prize", "maxtemp"],
            &["rain"],
            "inventoryunits",
            TreeConfig { max_depth: 3, min_samples: 8.0, thresholds: 4, min_gain: 1e-9 },
            &FactorizedEngine::new(),
        )
        .expect("tree fits")
    };
    let before = misses();
    let t1 = fit();
    let after_first = misses();
    let _t2 = fit();
    let after_second = misses();
    CartSorts {
        relations: rels.len(),
        first_fit_sorts: after_first - before,
        second_fit_sorts: after_second - after_first,
        leaves: t1.leaves(),
    }
}

/// The `cart-retailer` arm: trains the same CART regression tree twice
/// with the (single-threaded) LMFAO engine — cold (view cache cleared)
/// then warm — and reports per-fit view-cache accounting plus wall times.
pub fn cart_view_reuse(scale: f64) -> CartViewReuse {
    let ds = perf_dataset(scale);
    let rels: Vec<&str> = ds.relation_refs();
    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let fit = || {
        DecisionTree::fit_regression(
            &ds.db,
            &rels,
            &["prize", "maxtemp"],
            &["rain"],
            "inventoryunits",
            TreeConfig { max_depth: 3, min_samples: 8.0, thresholds: 4, min_gain: 1e-9 },
            &engine,
        )
        .expect("tree fits")
    };
    // Attribution by relation content id rather than global counters, so
    // concurrent cache users (other tests in this binary) cannot skew the
    // recorded numbers.
    let cache = ViewCache::global();
    let ids: Vec<u64> = rels.iter().map(|r| ds.db.get(r).expect("exists").data_id()).collect();
    let counts = || -> (u64, u64) {
        ids.iter().map(|&i| cache.stats_for_id(i)).fold((0, 0), |(a, b), (h, m)| (a + h, b + m))
    };
    cache.clear();
    let t0 = std::time::Instant::now();
    let cold = fit();
    let cold_wall_ns = t0.elapsed().as_nanos();
    let (cold_reused, cold_scanned) = counts();
    let t1 = std::time::Instant::now();
    let warm = fit();
    let warm_wall_ns = t1.elapsed().as_nanos();
    let (_, total_scanned) = counts();
    // A warm fit that disagreed with the cold one would invalidate every
    // number below; a hard assert (this arm runs in release) beats
    // silently recording a speedup between non-equivalent trainings.
    assert_eq!(warm.leaves(), cold.leaves(), "warm fit must reproduce the cold tree");
    CartViewReuse {
        batches_run: cold.batches_run,
        leaves: cold.leaves(),
        view_lookups: cold_reused + cold_scanned,
        views_reused: cold_reused,
        views_rescanned: cold_scanned,
        warm_views_rescanned: total_scanned - cold_scanned,
        cold_wall_ns,
        warm_wall_ns,
    }
}

/// The IVM arm: maintained-vs-recompute cost of serving single-row fact
/// inserts on the retailer covariance workload through
/// [`fdb_core::MaintainableEngine`].
#[derive(Debug, Clone, Default)]
pub struct IvmPerf {
    /// Single-row fact-insert deltas applied per arm.
    pub updates: usize,
    /// One-shot `prepare` cost (materialize every view), nanoseconds.
    pub prepare_ns: u128,
    /// Total wall time of the **maintained** arm (`delta_maintain: true`):
    /// each delta is folded into the view tree along the owner→root path.
    pub maintained_ns: u128,
    /// Total wall time of the **recompute** arm (`delta_maintain: false`):
    /// each delta invalidates and re-runs the batch — the pre-delta-layer
    /// behavior (the cross-batch view cache still serves what it can).
    pub recompute_ns: u128,
    /// Views kept warm in place by the maintained arm
    /// ([`fdb_core::ViewCacheStats::delta_maintained`] delta).
    pub delta_maintained: u64,
    /// Full-view rescans attributed to the dataset during the maintained
    /// arm (0 = nothing below or beside the owner→root path was scanned).
    pub maintained_rescans: u64,
}

impl IvmPerf {
    /// Maintained-arm throughput, updates per second.
    pub fn updates_per_sec(&self) -> f64 {
        self.updates as f64 / (self.maintained_ns.max(1) as f64 * 1e-9)
    }

    /// Recompute wall time over maintained wall time.
    pub fn speedup(&self) -> f64 {
        self.recompute_ns as f64 / self.maintained_ns.max(1) as f64
    }
}

/// Runs the IVM arm: prepares the grouped-covariance query on the LMFAO
/// engine, then serves `updates` single-row fact inserts twice — once
/// with in-place delta maintenance, once with per-delta recomputation —
/// and cross-checks that both arms end on the same result.
pub fn ivm_maintenance(scale: f64, updates: usize) -> IvmPerf {
    use fdb_core::MaintainableEngine;
    let ds = perf_dataset(scale);
    let q = covariance_query(&ds);
    let fact = "Inventory";
    let rel = ds.db.get(fact).expect("fact");
    let deltas: Vec<fdb_data::Delta> =
        (0..updates).map(|i| fdb_data::Delta::insert(fact, rel.row_vec(i % rel.len()))).collect();
    let cache = ViewCache::global();
    // Rescan attribution must follow the fact's *evolving* content ids
    // (each delta refreshes them): a fallback rebuild inside the
    // maintained arm would attribute its rescans to a post-delta id, so
    // summing only prepare-time ids would under-count and falsely report
    // pure delta propagation.
    let mut ids: Vec<u64> =
        ds.relation_refs().iter().map(|r| ds.db.get(r).expect("rel").data_id()).collect();
    // Maintained arm.
    let maintained_engine =
        LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let t0 = std::time::Instant::now();
    let mut st = maintained_engine.prepare(&ds.db, &q).expect("prepare");
    let prepare_ns = t0.elapsed().as_nanos();
    let before_maintained = cache.stats().delta_maintained;
    let rescans = |ids: &[u64]| -> u64 { ids.iter().map(|&i| cache.stats_for_id(i).1).sum() };
    let before_rescans = rescans(&ids);
    let t1 = std::time::Instant::now();
    let mut last = None;
    for d in &deltas {
        last = Some(maintained_engine.apply_delta(&mut st, d).expect("delta"));
        ids.push(st.database().get(fact).expect("fact").data_id());
    }
    let maintained_ns = t1.elapsed().as_nanos();
    let delta_maintained = cache.stats().delta_maintained - before_maintained;
    let maintained_rescans = rescans(&ids) - before_rescans;
    // Recompute arm: the same deltas without the delta layer.
    let recompute_engine = LmfaoEngine::with_config(EngineConfig {
        threads: 1,
        delta_maintain: false,
        ..Default::default()
    });
    let mut st2 = recompute_engine.prepare(&ds.db, &q).expect("prepare");
    let t2 = std::time::Instant::now();
    let mut last2 = None;
    for d in &deltas {
        last2 = Some(recompute_engine.apply_delta(&mut st2, d).expect("delta"));
    }
    let recompute_ns = t2.elapsed().as_nanos();
    // Agreement: both arms must end on identical aggregates.
    if let (Some(a), Some(b)) = (&last, &last2) {
        for i in 0..q.batch.len() {
            assert_eq!(
                a.grouped(i).len(),
                b.grouped(i).len(),
                "ivm arm diverged from recompute on agg {i}"
            );
            for (k, v) in a.grouped(i) {
                let e = b.grouped(i).get(k).copied().unwrap_or(f64::NAN);
                assert!(
                    (v - e).abs() <= 1e-6 * (1.0 + e.abs()),
                    "ivm arm diverged on agg {i} key {k:?}: {v} vs {e}"
                );
            }
        }
    }
    IvmPerf {
        updates,
        prepare_ns,
        maintained_ns,
        recompute_ns,
        delta_maintained,
        maintained_rescans,
    }
}

/// Overhead accounting for the fault-injection instrumentation: the
/// `fdb_data::fault` sites threaded through delta validation, view
/// maintenance, morsel execution, and cache admission.
///
/// With the `fault-injection` feature **off** — the default, and the
/// configuration every other number in `BENCH_engines.json` is measured
/// under — each site is an `#[inline(always)]` no-op, and this record
/// documents that the instrumentation stays within the acceptance budget
/// (≤1% of one maintained delta apply). With the feature **on**
/// (`sites_compiled_in = true`) the same fields report the real cost of
/// the live checks instead.
#[derive(Debug, Clone, Default)]
pub struct FaultOverhead {
    /// Whether the fault sites were compiled in for this run
    /// ([`fdb_data::fault::injection_enabled`]).
    pub sites_compiled_in: bool,
    /// `fault::check` invocations timed per arm.
    pub calls: u64,
    /// Wall time of `calls` iterations of the bare reference loop,
    /// nanoseconds.
    pub baseline_ns: u128,
    /// Wall time of the same loop with one `fault::check` per iteration.
    pub checked_ns: u128,
    /// Mean wall time of one maintained single-row `apply_delta` on the
    /// reference retailer workload, nanoseconds — the denominator the
    /// per-site cost is judged against.
    pub apply_delta_ns: u128,
}

/// A generous bound on fault sites crossed by one maintained delta:
/// validate + commit + per-view walk + publish + cache admit/evict.
const SITES_PER_DELTA: f64 = 8.0;

impl FaultOverhead {
    /// Mean added cost of one `fault::check` site, nanoseconds. Clamped
    /// at zero: with the feature off both arms compile to the same loop
    /// and the difference is timer noise in either direction.
    pub fn ns_per_check(&self) -> f64 {
        ((self.checked_ns as f64 - self.baseline_ns as f64) / self.calls.max(1) as f64).max(0.0)
    }

    /// Whole-pipeline site cost as a fraction of one maintained
    /// `apply_delta` — the "≤1% overhead with fault-injection compiled
    /// out" acceptance number, using [`SITES_PER_DELTA`] sites per delta.
    pub fn overhead_fraction_per_delta(&self) -> f64 {
        SITES_PER_DELTA * self.ns_per_check() / self.apply_delta_ns.max(1) as f64
    }
}

/// Measures the fault-site overhead: a `calls`-iteration accumulation
/// loop with and without a `fault::check` per iteration, plus the mean
/// cost of one maintained single-row delta on the tiny retailer instance
/// to anchor the fraction the sites add.
pub fn fault_overhead(calls: u64) -> FaultOverhead {
    use std::hint::black_box;
    let timed_loop = |checked: bool| -> u128 {
        let t = std::time::Instant::now();
        let mut acc = 0u64;
        for i in 0..calls {
            if checked {
                fdb_data::fault::check("bench-overhead").expect("no fault plan installed");
            }
            acc = acc.wrapping_add(black_box(i));
        }
        black_box(acc);
        t.elapsed().as_nanos()
    };
    // Warm both arms once so neither pays first-touch costs in the
    // measured pass.
    timed_loop(false);
    timed_loop(true);
    let baseline_ns = timed_loop(false);
    let checked_ns = timed_loop(true);

    // Reference delta cost: maintained single-row fact inserts, the same
    // shape as the `ivm` arm but sized for a quick anchor measurement.
    use fdb_core::MaintainableEngine;
    let ds = perf_dataset(0.02);
    let q = covariance_query(&ds);
    let rel = ds.db.get("Inventory").expect("fact");
    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let mut st = engine.prepare(&ds.db, &q).expect("prepare");
    let updates = 64u128;
    let t = std::time::Instant::now();
    for i in 0..updates as usize {
        let d = fdb_data::Delta::insert("Inventory", rel.row_vec(i % rel.len()));
        engine.apply_delta(&mut st, &d).expect("delta");
    }
    let apply_delta_ns = t.elapsed().as_nanos() / updates;

    FaultOverhead {
        sites_compiled_in: fdb_data::fault::injection_enabled(),
        calls,
        baseline_ns,
        checked_ns,
        apply_delta_ns,
    }
}

/// The serving arm: sustained query throughput of a
/// [`fdb_core::ServingEngine`] under a live delta stream — the
/// epoch/snapshot read path's headline number. Two phases on the same
/// workload, each over a fresh engine: **one reader**, then **`readers`
/// readers**, every reader issuing `queries_per_reader` full engine runs
/// against pinned snapshots while one writer streams `updates` single-row
/// fact inserts through the transactional maintenance path. The cache
/// columns record how the global striped sort/view caches behaved during
/// the multi-reader phase: hit deltas grow with the reader count, and the
/// `*_contended` counters — stripe-lock acquisitions that found the
/// stripe held and had to wait — are the number the striping exists to
/// keep near zero.
#[derive(Debug, Clone, Default)]
pub struct ServingPerf {
    /// Reader threads of the multi-reader phase.
    pub readers: usize,
    /// Queries each reader issues per phase.
    pub queries_per_reader: usize,
    /// Single-row fact-insert deltas streamed by the writer per phase.
    pub updates: usize,
    /// Queries served by the 1-reader phase.
    pub single_queries: u64,
    /// Wall time of the 1-reader phase, nanoseconds.
    pub single_ns: u128,
    /// Queries served by the `readers`-reader phase.
    pub multi_queries: u64,
    /// Wall time of the `readers`-reader phase, nanoseconds.
    pub multi_ns: u128,
    /// Deltas committed and published during the multi-reader phase.
    pub deltas_applied: u64,
    /// Sort-cache hits during the multi-reader phase.
    pub sort_hits: u64,
    /// Sort-cache stripe-lock waits during the multi-reader phase.
    pub sort_contended: u64,
    /// Lock stripes of the global sort cache.
    pub sort_stripes: usize,
    /// View-cache hits during the multi-reader phase.
    pub view_hits: u64,
    /// View-cache stripe-lock waits during the multi-reader phase.
    pub view_contended: u64,
    /// Lock stripes of the global view cache.
    pub view_stripes: usize,
}

impl ServingPerf {
    /// Queries per second sustained by the 1-reader phase.
    pub fn qps_single(&self) -> f64 {
        self.single_queries as f64 / (self.single_ns.max(1) as f64 * 1e-9)
    }

    /// Queries per second sustained by the multi-reader phase.
    pub fn qps_multi(&self) -> f64 {
        self.multi_queries as f64 / (self.multi_ns.max(1) as f64 * 1e-9)
    }

    /// Multi-reader over single-reader throughput — the concurrent-read
    /// scaling of the snapshot path (`readers`× is perfect).
    pub fn reader_scaling(&self) -> f64 {
        self.qps_multi() / self.qps_single().max(f64::MIN_POSITIVE)
    }
}

/// Runs the serving arm: grouped covariance on the retailer instance
/// through a `ServingEngine` over the single-threaded LMFAO backend (so
/// the phases isolate *reader* parallelism), 1 reader vs `readers`
/// readers racing one live writer.
pub fn serving_bench(
    scale: f64,
    readers: usize,
    queries_per_reader: usize,
    updates: usize,
) -> ServingPerf {
    let ds = perf_dataset(scale);
    let q = covariance_query(&ds);
    let rel = ds.db.get("Inventory").expect("fact");
    let deltas: Vec<fdb_data::Delta> = (0..updates)
        .map(|i| fdb_data::Delta::insert("Inventory", rel.row_vec(i % rel.len())))
        .collect();
    let phase = |nreaders: usize| -> (u64, u128, u64) {
        let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
        let serving = fdb_core::ServingEngine::new(engine, &ds.db, &q).expect("serving prepare");
        let e0 = serving.epoch();
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            let (serving, deltas) = (&serving, &deltas);
            for _ in 0..nreaders {
                s.spawn(move || {
                    for _ in 0..queries_per_reader {
                        serving.query().expect("serving query");
                    }
                });
            }
            s.spawn(move || {
                for d in deltas {
                    serving.apply_delta(d).expect("serving delta");
                    std::thread::yield_now();
                }
            });
        });
        let ns = t0.elapsed().as_nanos();
        let st = serving.stats();
        // A qps number over a stream that silently dropped deltas (or
        // failed to publish) would measure the wrong system.
        assert_eq!(st.epoch, e0 + updates as u64, "every delta published");
        assert_eq!(st.deltas_rejected, 0, "no delta may fail in this stream");
        (st.queries, ns, st.deltas_applied)
    };
    let (single_queries, single_ns, _) = phase(1);
    let sc0 = SortCache::global().counters();
    let vc0 = ViewCache::global().stats();
    let (multi_queries, multi_ns, deltas_applied) = phase(readers.max(1));
    let sc1 = SortCache::global().counters();
    let vc1 = ViewCache::global().stats();
    ServingPerf {
        readers: readers.max(1),
        queries_per_reader,
        updates,
        single_queries,
        single_ns,
        multi_queries,
        multi_ns,
        deltas_applied,
        sort_hits: sc1.hits - sc0.hits,
        sort_contended: sc1.contended - sc0.contended,
        sort_stripes: sc1.stripes,
        view_hits: vc1.hits - vc0.hits,
        view_contended: vc1.contended - vc0.contended,
        view_stripes: vc1.stripes,
    }
}

/// The front-door arm: sustained overload through a
/// [`fdb_core::FrontDoor`] — `producers` threads racing single-row fact
/// inserts into a deliberately small bounded queue (Block backpressure)
/// while `readers` threads query pinned snapshots, the admission layer's
/// headline numbers. `submit_p99_ns` is the tail a producer waits at the
/// door when the queue is full, and `coalescing_factor` is how many
/// submits the writer's group commit folds into one transactional
/// maintenance pass (1.0 = no coalescing; higher = fewer epochs than
/// submits).
#[derive(Debug, Clone, Default)]
pub struct FrontDoorPerf {
    /// Producer threads racing submits.
    pub producers: usize,
    /// Reader threads querying snapshots for the duration.
    pub readers: usize,
    /// Deltas each producer submits.
    pub per_producer: usize,
    /// Bounded queue capacity (the overload knob).
    pub queue_capacity: usize,
    /// Deltas admitted (all of them — the Block policy is lossless).
    pub submitted: u64,
    /// Transactional batches committed and published.
    pub batches_committed: u64,
    /// Submits absorbed into an earlier batch by group commit.
    pub coalesced: u64,
    /// Snapshot queries served while the producers ran.
    pub queries: u64,
    /// Median admission latency of one submit, nanoseconds.
    pub submit_p50_ns: u64,
    /// 99th-percentile admission latency of one submit, nanoseconds.
    pub submit_p99_ns: u64,
    /// Wall time from first submit to fully drained queue, nanoseconds.
    pub wall_ns: u128,
}

impl FrontDoorPerf {
    /// Submits admitted per second across all producers.
    pub fn submit_qps(&self) -> f64 {
        self.submitted as f64 / (self.wall_ns.max(1) as f64 * 1e-9)
    }

    /// Snapshot queries per second sustained while the door was busy.
    pub fn read_qps(&self) -> f64 {
        self.queries as f64 / (self.wall_ns.max(1) as f64 * 1e-9)
    }

    /// Mean submits folded into one committed batch.
    pub fn coalescing_factor(&self) -> f64 {
        self.submitted as f64 / self.batches_committed.max(1) as f64
    }
}

/// Runs the front-door arm: grouped covariance on the retailer instance
/// behind a [`fdb_core::FrontDoor`] over single-threaded LMFAO, with a
/// queue far smaller than the producers' combined burst so every
/// producer genuinely hits backpressure and the writer's group commit
/// genuinely coalesces.
pub fn frontdoor_bench(
    scale: f64,
    producers: usize,
    readers: usize,
    per_producer: usize,
) -> FrontDoorPerf {
    use std::sync::atomic::{AtomicBool, Ordering};
    let producers = producers.max(1);
    let ds = perf_dataset(scale);
    let q = covariance_query(&ds);
    let rel = ds.db.get("Inventory").expect("fact");
    let streams: Vec<Vec<fdb_data::Delta>> = (0..producers)
        .map(|p| {
            (0..per_producer)
                .map(|i| {
                    fdb_data::Delta::insert(
                        "Inventory",
                        rel.row_vec((p * per_producer + i) % rel.len()),
                    )
                })
                .collect()
        })
        .collect();
    let cfg = fdb_core::FrontDoorConfig {
        // Small enough that a burst of `producers` submits overflows it:
        // the Block policy parks producers on the not-full condvar, and
        // the p99 below measures that wait.
        queue_capacity: 4,
        backpressure: fdb_core::Backpressure::Block,
        submit_timeout: std::time::Duration::from_secs(60),
        ..Default::default()
    };
    let queue_capacity = cfg.queue_capacity;
    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let fd = fdb_core::FrontDoor::new(engine, &ds.db, &q, cfg).expect("front door prepare");
    let e0 = fd.epoch();
    let done = AtomicBool::new(false);
    let t0 = std::time::Instant::now();
    let (mut latencies, queries) = std::thread::scope(|s| {
        let (fd, done) = (&fd, &done);
        let reader_handles: Vec<_> = (0..readers)
            .map(|_| {
                s.spawn(move || {
                    let mut served = 0u64;
                    while !done.load(Ordering::Acquire) {
                        fd.query().expect("snapshot query");
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        let producer_handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(stream.len());
                    for d in stream {
                        let t = std::time::Instant::now();
                        fd.submit(d.clone()).expect("admit");
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        let mut latencies = Vec::with_capacity(producers * per_producer);
        for h in producer_handles {
            latencies.extend(h.join().expect("producer"));
        }
        // Every submit is in; wait for the writer to drain and publish
        // before stopping the clock (and the readers).
        fd.flush();
        done.store(true, Ordering::Release);
        let queries: u64 = reader_handles.into_iter().map(|h| h.join().expect("reader")).sum();
        (latencies, queries)
    });
    let wall_ns = t0.elapsed().as_nanos();
    latencies.sort_unstable();
    let pct = |p: usize| latencies[(latencies.len() - 1) * p / 100];
    let st = fd.stats();
    // An overload number over a stream that lost or duplicated deltas
    // would measure the wrong system: Block is lossless, the queue must
    // be empty after flush, and each committed batch published exactly
    // one epoch.
    assert_eq!(st.submitted, (producers * per_producer) as u64, "every submit admitted");
    assert_eq!(st.rejected + st.timed_out + st.shed, 0, "Block loses nothing");
    assert_eq!(st.queued, 0, "flush drained the queue");
    assert_eq!(st.batches_failed, 0, "no batch may fail in this stream");
    assert_eq!(st.batches_committed + st.coalesced, st.submitted, "group-commit accounting");
    assert_eq!(fd.epoch(), e0 + st.batches_committed, "one epoch per committed batch");
    FrontDoorPerf {
        producers,
        readers,
        per_producer,
        queue_capacity,
        submitted: st.submitted,
        batches_committed: st.batches_committed,
        coalesced: st.coalesced,
        queries,
        submit_p50_ns: pct(50),
        submit_p99_ns: pct(99),
        wall_ns,
    }
}

/// Speedup table: per `(bench, engine)`, `baseline-hash / optimized` —
/// and for the sharding rows, `single-shard / sharded` (cross-core
/// scaling of the shard layer).
pub fn speedups(rows: &[PerfRow]) -> Vec<(&'static str, &'static str, f64)> {
    let mut out = Vec::new();
    for row in rows {
        let base_config = match row.config {
            "optimized" => "baseline-hash",
            "sharded" => "single-shard",
            _ => continue,
        };
        if let Some(base) = rows
            .iter()
            .find(|r| r.bench == row.bench && r.engine == row.engine && r.config == base_config)
        {
            out.push((row.bench, row.engine, base.wall_ns as f64 / row.wall_ns.max(1) as f64));
        }
    }
    out
}

/// The `caches` JSON object: a snapshot of the global sort- and
/// view-cache counters at serialization time — hit/miss/eviction
/// observability for the whole harness run.
fn caches_json() -> String {
    let s = SortCache::global().counters();
    let v = ViewCache::global().stats();
    format!(
        "{{\n    \"sort\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"entries\": {}, \"bytes\": {}, \"stripes\": {}, \"contended\": {}}},\n    \
         \"view\": {{\"hits\": {}, \"misses\": {}, \
         \"views_reused\": {}, \"views_rescanned\": {}, \"delta_maintained\": {}, \
         \"evictions\": {}, \"entries\": {}, \"bytes\": {}, \"stripes\": {}, \
         \"contended\": {}}}\n  }}",
        s.hits,
        s.misses,
        s.evictions,
        s.entries,
        s.bytes,
        s.stripes,
        s.contended,
        v.hits,
        v.misses,
        v.views_reused,
        v.views_rescanned,
        v.delta_maintained,
        v.evictions,
        v.entries,
        v.bytes,
        v.stripes,
        v.contended
    )
}

/// Serializes the rows (plus optional CART and IVM accounting) as the
/// `BENCH_engines.json` document.
pub fn to_json(
    rows: &[PerfRow],
    cart: Option<&CartSorts>,
    views: Option<&CartViewReuse>,
    ivm: Option<&IvmPerf>,
    fault: Option<&FaultOverhead>,
    serving: Option<&ServingPerf>,
    frontdoor: Option<&FrontDoorPerf>,
) -> String {
    let mut s = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"engine\": \"{}\", \"config\": \"{}\", \
             \"dataset\": \"{}\", \"wall_ns\": {}, \"groups\": {}, \
             \"threads\": {}, \"morsel_rows\": {}, \"available_cores\": {}}}{}\n",
            r.bench,
            r.engine,
            r.config,
            r.dataset,
            r.wall_ns,
            r.groups,
            r.threads,
            r.morsel_rows,
            r.available_cores,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"speedups\": {");
    let sp = speedups(rows);
    for (i, (bench, engine, x)) in sp.iter().enumerate() {
        s.push_str(&format!(
            "\"{bench}/{engine}\": {x:.3}{}",
            if i + 1 < sp.len() { ", " } else { "" }
        ));
    }
    s.push('}');
    if let Some(c) = cart {
        s.push_str(&format!(
            ",\n  \"cart\": {{\"relations\": {}, \"first_fit_sorts\": {}, \
             \"second_fit_sorts\": {}, \"leaves\": {}}}",
            c.relations, c.first_fit_sorts, c.second_fit_sorts, c.leaves
        ));
    }
    if let Some(v) = views {
        s.push_str(&format!(
            ",\n  \"cart_view_reuse\": {{\"bench\": \"cart-retailer\", \"batches_run\": {}, \
             \"leaves\": {}, \"view_lookups\": {}, \"views_reused\": {}, \
             \"views_rescanned\": {}, \"warm_views_rescanned\": {}, \"reuse_ratio\": {:.3}, \
             \"cold_wall_ns\": {}, \"warm_wall_ns\": {}, \"warm_speedup\": {:.3}}}",
            v.batches_run,
            v.leaves,
            v.view_lookups,
            v.views_reused,
            v.views_rescanned,
            v.warm_views_rescanned,
            v.reuse_ratio(),
            v.cold_wall_ns,
            v.warm_wall_ns,
            v.warm_speedup()
        ));
    }
    if let Some(p) = ivm {
        s.push_str(&format!(
            ",\n  \"ivm\": {{\"bench\": \"ivm-retailer\", \"updates\": {}, \
             \"prepare_ns\": {}, \"maintained_ns\": {}, \"recompute_ns\": {}, \
             \"updates_per_sec\": {:.0}, \"delta_vs_recompute_speedup\": {:.3}, \
             \"delta_maintained\": {}, \"maintained_rescans\": {}}}",
            p.updates,
            p.prepare_ns,
            p.maintained_ns,
            p.recompute_ns,
            p.updates_per_sec(),
            p.speedup(),
            p.delta_maintained,
            p.maintained_rescans
        ));
    }
    if let Some(f) = fault {
        s.push_str(&format!(
            ",\n  \"fault_overhead\": {{\"sites_compiled_in\": {}, \"calls\": {}, \
             \"baseline_ns\": {}, \"checked_ns\": {}, \"ns_per_check\": {:.4}, \
             \"apply_delta_ns\": {}, \"overhead_fraction_per_delta\": {:.6}}}",
            f.sites_compiled_in,
            f.calls,
            f.baseline_ns,
            f.checked_ns,
            f.ns_per_check(),
            f.apply_delta_ns,
            f.overhead_fraction_per_delta()
        ));
    }
    if let Some(p) = serving {
        s.push_str(&format!(
            ",\n  \"serving\": {{\"bench\": \"serving-retailer\", \"readers\": {}, \
             \"queries_per_reader\": {}, \"updates\": {}, \"qps_single_reader\": {:.1}, \
             \"qps_multi_reader\": {:.1}, \"reader_scaling\": {:.3}, \"deltas_applied\": {}, \
             \"sort_hits\": {}, \"sort_contended\": {}, \"sort_stripes\": {}, \
             \"view_hits\": {}, \"view_contended\": {}, \"view_stripes\": {}}}",
            p.readers,
            p.queries_per_reader,
            p.updates,
            p.qps_single(),
            p.qps_multi(),
            p.reader_scaling(),
            p.deltas_applied,
            p.sort_hits,
            p.sort_contended,
            p.sort_stripes,
            p.view_hits,
            p.view_contended,
            p.view_stripes
        ));
    }
    if let Some(p) = frontdoor {
        s.push_str(&format!(
            ",\n  \"frontdoor\": {{\"bench\": \"frontdoor-retailer\", \"producers\": {}, \
             \"readers\": {}, \"per_producer\": {}, \"queue_capacity\": {}, \
             \"submitted\": {}, \"batches_committed\": {}, \"coalesced\": {}, \
             \"coalescing_factor\": {:.3}, \"submit_qps\": {:.1}, \"submit_p50_ns\": {}, \
             \"submit_p99_ns\": {}, \"read_qps\": {:.1}, \"queries\": {}}}",
            p.producers,
            p.readers,
            p.per_producer,
            p.queue_capacity,
            p.submitted,
            p.batches_committed,
            p.coalesced,
            p.coalescing_factor(),
            p.submit_qps(),
            p.submit_p50_ns,
            p.submit_p99_ns,
            p.read_qps(),
            p.queries
        ));
    }
    s.push_str(&format!(",\n  \"caches\": {}", caches_json()));
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_and_checksums_agree() {
        let _guard = crate::timing_lock();
        let rows = run_all_with_shards(0.02, 1, Arms::Both, 3);
        assert_eq!(
            rows.len(),
            34,
            "2 benches × (3 engines × 2 arms + sharded pair) + zipf pair + 8 kernels × 2 arms"
        );
        assert!(rows.iter().all(|r| r.available_cores >= 1));
        assert!(rows.iter().all(|r| r.threads >= 1 && r.morsel_rows >= 1));
        // Paired arms must emit identical group counts: optimized vs
        // baseline-hash per engine, and sharded vs single-shard (the
        // merge must reconstruct exactly the unsharded key sets).
        for r in rows.iter().filter(|r| r.config == "optimized" || r.config == "sharded") {
            let base_config =
                if r.config == "optimized" { "baseline-hash" } else { "single-shard" };
            let base = rows
                .iter()
                .find(|b| b.bench == r.bench && b.engine == r.engine && b.config == base_config)
                .expect("paired row");
            assert_eq!(r.groups, base.groups, "{}/{}", r.bench, r.engine);
            assert!(r.groups > 0, "{}/{} emitted no groups", r.bench, r.engine);
        }
        // The sharded pair also matches the plain engines' checksum.
        let lmfao = rows
            .iter()
            .find(|r| r.engine == "lmfao" && r.config == "optimized")
            .expect("lmfao row");
        let sharded = rows
            .iter()
            .find(|r| {
                r.bench == lmfao.bench && r.engine == "sharded-lmfao" && r.config == "sharded"
            })
            .expect("sharded row");
        assert_eq!(sharded.groups, lmfao.groups, "sharded checksum matches unsharded");
        let json = to_json(
            &rows,
            Some(&CartSorts::default()),
            Some(&CartViewReuse::default()),
            Some(&IvmPerf::default()),
            Some(&FaultOverhead::default()),
            Some(&ServingPerf::default()),
            Some(&FrontDoorPerf::default()),
        );
        assert!(json.contains("\"speedups\""));
        assert!(json.contains("grouped-covariance/lmfao"));
        assert!(json.contains("grouped-covariance/sharded-lmfao"));
        assert!(json.contains("\"cart\""));
        assert!(json.contains("\"cart_view_reuse\""));
        assert!(json.contains("\"ivm\""));
        assert!(json.contains("\"delta_vs_recompute_speedup\""));
        assert!(json.contains("\"caches\""));
        assert!(json.contains("\"sort\"") && json.contains("\"view\""));
        assert!(json.contains("\"stripes\"") && json.contains("\"contended\""));
        assert!(json.contains("\"delta_maintained\""));
        assert!(json.contains("\"fault_overhead\""));
        assert!(json.contains("\"overhead_fraction_per_delta\""));
        assert!(json.contains("\"serving\""));
        assert!(json.contains("\"qps_multi_reader\"") && json.contains("\"reader_scaling\""));
        assert!(json.contains("\"frontdoor\""));
        assert!(json.contains("\"submit_p99_ns\"") && json.contains("\"coalescing_factor\""));
    }

    #[test]
    fn serving_arm_sustains_reads_under_a_live_delta_stream() {
        let _guard = crate::timing_lock();
        let p = serving_bench(0.02, 2, 6, 8);
        assert_eq!(p.readers, 2);
        assert_eq!(p.single_queries, 6, "1 reader × 6 queries");
        assert_eq!(p.multi_queries, 12, "2 readers × 6 queries");
        assert_eq!(p.deltas_applied, 8, "the writer's whole stream committed");
        assert!(p.qps_single() > 0.0 && p.qps_multi() > 0.0);
        assert!(p.reader_scaling() > 0.0);
        assert!(p.sort_stripes >= 1 && p.view_stripes >= 1);
    }

    #[test]
    fn frontdoor_arm_survives_overload_without_losing_a_submit() {
        let _guard = crate::timing_lock();
        let p = frontdoor_bench(0.02, 3, 2, 6);
        assert_eq!(p.producers, 3);
        assert_eq!(p.submitted, 18, "3 producers × 6 submits, all admitted");
        assert!(p.batches_committed >= 1 && p.batches_committed <= p.submitted);
        assert_eq!(p.batches_committed + p.coalesced, p.submitted);
        assert!(p.coalescing_factor() >= 1.0);
        assert!(p.submit_qps() > 0.0);
        assert!(p.submit_p99_ns >= p.submit_p50_ns);
    }

    #[test]
    fn fault_sites_cost_under_one_percent_of_a_delta_when_compiled_out() {
        let _guard = crate::timing_lock();
        let f = fault_overhead(200_000);
        assert_eq!(f.sites_compiled_in, fdb_data::fault::injection_enabled());
        assert!(f.apply_delta_ns > 0);
        // The acceptance bound only holds for the no-op build; with the
        // feature on the sites are real work and the number is reported,
        // not bounded.
        if !f.sites_compiled_in {
            let frac = f.overhead_fraction_per_delta();
            assert!(
                frac < 0.01,
                "compiled-out fault sites cost {:.4}% of a delta (≥1%)",
                frac * 100.0
            );
        }
    }

    #[test]
    fn cart_view_reuse_rescans_strictly_fewer_views_than_lookups() {
        let _guard = crate::timing_lock();
        let c = cart_view_reuse(0.05);
        assert!(c.batches_run >= 3, "one batch per tree node");
        assert!(c.view_lookups > 0);
        assert!(
            c.views_rescanned < c.view_lookups,
            "residual reuse must serve some subtrees within the cold fit: \
             {} rescans of {} lookups",
            c.views_rescanned,
            c.view_lookups
        );
        assert!(c.views_reused > 0);
        assert_eq!(c.warm_views_rescanned, 0, "identical warm fit is fully cached");
        assert!(c.reuse_ratio() > 0.0 && c.reuse_ratio() < 1.0);
        // No wall-clock assertion here (CI timing noise); the recorded
        // warm_speedup lands in BENCH_engines.json instead.
        assert!(c.cold_wall_ns > 0 && c.warm_wall_ns > 0);
    }

    #[test]
    fn ivm_arm_serves_fact_inserts_by_delta_propagation() {
        let _guard = crate::timing_lock();
        let p = ivm_maintenance(0.05, 12);
        assert_eq!(p.updates, 12);
        // The acceptance shape: every single-row fact insert is served by
        // in-place maintenance — the counter moves, and nothing below or
        // beside the owner→root path is rescanned (the agreement with the
        // recompute arm is asserted inside `ivm_maintenance`).
        assert!(p.delta_maintained > 0, "fact inserts maintained in place");
        assert_eq!(p.maintained_rescans, 0, "no full-view rescans during maintenance");
        assert!(p.updates_per_sec() > 0.0);
        assert!(p.prepare_ns > 0 && p.recompute_ns > 0);
    }

    #[test]
    fn baseline_only_arm_filters_rows() {
        let _guard = crate::timing_lock();
        let rows = run_all(0.02, 1, Arms::BaselineOnly);
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.config == "baseline-hash"));
    }
}
