//! Figure 3: the end-to-end experiment.
//!
//! Left table — retailer dataset characteristics (cardinalities, arities,
//! CSV sizes, join blow-up). Right table — structure-agnostic
//! (join → export → shuffle → one-epoch SGD) vs structure-aware
//! (LMFAO aggregate batch → gradient descent on the covariance matrix),
//! with times, payload sizes, and RMSE of both models on held-out data.

use fdb_core::{sufficient_stats, EngineConfig, LmfaoEngine};
use fdb_data::relation_to_csv;
use fdb_datasets::Dataset;
use fdb_ml::linreg::{LinearRegression, RidgeConfig};
use fdb_ml::sgd::{shuffled, train_linear_sgd, SgdConfig};
use fdb_ml::DataMatrix;
use fdb_query::natural_join_all;

/// One row of the dataset-characteristics table.
#[derive(Debug, Clone)]
pub struct DatasetRow {
    /// Relation name (or "Join").
    pub name: String,
    /// Cardinality.
    pub rows: usize,
    /// Arity.
    pub attrs: usize,
    /// CSV byte size.
    pub csv_bytes: usize,
}

/// The dataset-characteristics table (Figure 3 left), including the
/// materialized join row.
pub fn dataset_table(ds: &Dataset) -> Vec<DatasetRow> {
    let mut rows = Vec::new();
    for (name, rel) in ds.db.iter() {
        rows.push(DatasetRow {
            name: name.to_string(),
            rows: rel.len(),
            attrs: rel.schema().arity(),
            csv_bytes: relation_to_csv(rel).len(),
        });
    }
    let rels: Vec<&str> = ds.relation_refs();
    let join = natural_join_all(&ds.db, &rels).expect("retailer join is well-formed");
    rows.push(DatasetRow {
        name: "Join".to_string(),
        rows: join.len(),
        attrs: join.schema().arity(),
        csv_bytes: relation_to_csv(&join).len(),
    });
    rows
}

/// Timings and accuracy of both pipelines (Figure 3 right).
#[derive(Debug, Clone)]
pub struct EndToEnd {
    /// Join materialization time (structure-agnostic).
    pub join_secs: f64,
    /// Export + import time (CSV round trip of the data matrix).
    pub export_secs: f64,
    /// Shuffle time.
    pub shuffle_secs: f64,
    /// One-epoch SGD time.
    pub sgd_secs: f64,
    /// Data matrix CSV size in bytes.
    pub matrix_bytes: usize,
    /// Structure-agnostic RMSE on held-out rows.
    pub sgd_rmse: f64,
    /// LMFAO aggregate batch time (structure-aware).
    pub batch_secs: f64,
    /// Gradient descent over the covariance matrix.
    pub gd_secs: f64,
    /// Sufficient statistics payload size in bytes.
    pub stats_bytes: usize,
    /// Structure-aware RMSE on the same held-out rows.
    pub lmfao_rmse: f64,
    /// Total structure-agnostic seconds.
    pub agnostic_total: f64,
    /// Total structure-aware seconds.
    pub aware_total: f64,
}

/// Runs both pipelines on a dataset (expects the retailer feature set).
pub fn end_to_end(ds: &Dataset, threads: usize) -> EndToEnd {
    let rels: Vec<&str> = ds.relation_refs();
    let cont: Vec<&str> = ds.features.continuous.iter().map(String::as_str).collect();
    let cat: Vec<&str> = ds.features.categorical.iter().map(String::as_str).collect();
    let cont_resp: Vec<String> = ds.features.continuous_with_response();
    let cont_resp_refs: Vec<&str> = cont_resp.iter().map(String::as_str).collect();

    // ---- structure-agnostic: join → export → shuffle → SGD ----
    let (join_secs, flat) = crate::time(|| natural_join_all(&ds.db, &rels).expect("join"));
    let (export_secs, matrix) = crate::time(|| {
        // Export to CSV bytes and parse back: the PostgreSQL → TensorFlow
        // data move.
        let bytes = relation_to_csv(&flat);
        let schema = flat.schema().clone();
        let reimported = fdb_data::read_csv(schema, &bytes).expect("own CSV re-imports");
        (bytes.len(), reimported)
    });
    let (matrix_bytes, reimported) = matrix;
    let dm = DataMatrix::from_relation(&reimported, &cont, &cat, &ds.features.response)
        .expect("features exist");
    let (shuffle_secs, shuffled_dm) = crate::time(|| shuffled(&dm, 7));
    let (train, test) = shuffled_dm.split(0.02); // 2% held out, as in the paper
    let (sgd_secs, sgd_model) = crate::time(|| train_linear_sgd(&train, &SgdConfig::default()));
    let sgd_rmse = test.rmse(&sgd_model.weights, sgd_model.intercept);

    // ---- structure-aware: LMFAO batch → GD on the covariance matrix ----
    let engine = LmfaoEngine::with_config(EngineConfig { threads, ..Default::default() });
    let (batch_secs, stats) = crate::time(|| {
        sufficient_stats(&ds.db, &rels, &cont_resp_refs, &cat, &engine).expect("stats")
    });
    let stats_bytes = stats_size_bytes(&stats);
    let (gd_secs, lmfao_model) =
        crate::time(|| LinearRegression::fit_gd(&stats, &RidgeConfig::default()).expect("fit"));
    let lmfao_rmse = test.rmse(&lmfao_model.weights, lmfao_model.intercept);

    EndToEnd {
        join_secs,
        export_secs,
        shuffle_secs,
        sgd_secs,
        matrix_bytes,
        sgd_rmse,
        batch_secs,
        gd_secs,
        stats_bytes,
        lmfao_rmse,
        agnostic_total: join_secs + export_secs + shuffle_secs + sgd_secs,
        aware_total: batch_secs + gd_secs,
    }
}

/// Approximate byte size of the sufficient statistics (the "37 KB vs 23 GB"
/// comparison of Figure 3).
pub fn stats_size_bytes(stats: &fdb_core::SufficientStats) -> usize {
    let f = std::mem::size_of::<f64>();
    let mut bytes = f * (1 + stats.sum.len() + stats.q.len());
    for m in &stats.cat_counts {
        bytes += m.len() * (8 + f);
    }
    for per in &stats.cat_cont_sums {
        for m in per {
            bytes += m.len() * (8 + f);
        }
    }
    for m in stats.cat_pair_counts.values() {
        bytes += m.len() * (16 + f);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_datasets::{retailer, RetailerConfig};

    #[test]
    fn pipelines_agree_on_model_quality_and_aware_is_smaller() {
        let ds = retailer(RetailerConfig::tiny());
        let r = end_to_end(&ds, 1);
        // Sufficient statistics are orders of magnitude smaller than the
        // materialized data matrix.
        assert!(
            r.stats_bytes * 10 < r.matrix_bytes,
            "stats {} vs matrix {}",
            r.stats_bytes,
            r.matrix_bytes
        );
        // Both models must beat a terrible baseline and be comparable;
        // the structure-aware model (converged GD) is at least as good as
        // one-epoch SGD up to 20% slack.
        assert!(r.lmfao_rmse <= r.sgd_rmse * 1.2, "{} vs {}", r.lmfao_rmse, r.sgd_rmse);
        assert!(r.aware_total > 0.0 && r.agnostic_total > 0.0);
    }

    #[test]
    fn dataset_table_includes_join_blowup() {
        let ds = retailer(RetailerConfig::tiny());
        let table = dataset_table(&ds);
        assert_eq!(table.len(), 6); // 5 relations + Join
        let join = table.last().unwrap();
        let inventory = &table[0];
        assert!(join.attrs > inventory.attrs);
        assert_eq!(join.rows, inventory.rows); // key-fkey join preserves fact rows
    }
}
