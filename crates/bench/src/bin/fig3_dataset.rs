//! Regenerates Figure 3 (left): retailer dataset characteristics.
//! Usage: `fig3_dataset [scale]` (default 1.0).

use fdb_bench::{fig3, fmt_bytes, print_table};
use fdb_datasets::{retailer, RetailerConfig};

fn main() {
    let scale = fdb_bench::datasets4::scale_from_args();
    let ds = retailer(RetailerConfig::scaled(scale));
    let table = fig3::dataset_table(&ds);
    println!("\nFigure 3 (left): Retailer dataset characteristics, scale {scale}\n");
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|r| {
            vec![r.name.clone(), r.rows.to_string(), r.attrs.to_string(), fmt_bytes(r.csv_bytes)]
        })
        .collect();
    print_table(&["Relation", "Cardinality", "Arity", "CSV Size"], &rows);
    let input: usize = table.iter().filter(|r| r.name != "Join").map(|r| r.csv_bytes).sum();
    let join = table.last().expect("join row");
    println!(
        "\nJoin blow-up: {:.1}x the input CSV size ({} vs {}).",
        join.csv_bytes as f64 / input as f64,
        fmt_bytes(join.csv_bytes),
        fmt_bytes(input)
    );
}
