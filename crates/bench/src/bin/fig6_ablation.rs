//! Regenerates Figure 6: cumulative speedup of specialisation, sharing,
//! and parallelisation for covariance-batch computation on all four
//! datasets. Usage: `fig6_ablation [scale] [threads]`.

use fdb_bench::{datasets4, fig6, print_table};

fn main() {
    let scale = datasets4::scale_from_args();
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("\nFigure 6: relative speedup of code optimisations (covariance batch), scale {scale}, {threads} threads\n");
    let mut rows = Vec::new();
    for ds in datasets4::all(scale) {
        let row = fig6::measure(&ds, threads);
        let speedups = row.speedups();
        rows.push(
            std::iter::once(row.dataset.to_string())
                .chain(speedups.iter().map(|(_, s)| format!("{s:.1}x")))
                .collect::<Vec<String>>(),
        );
    }
    print_table(&["Dataset", "baseline", "+specialisation", "+sharing", "+parallelisation"], &rows);
}
