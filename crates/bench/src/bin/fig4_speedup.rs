//! Regenerates Figure 4 (left): LMFAO speedup over the classical engine
//! for the covariance (C) and regression-node (R) batches on all four
//! datasets. Usage: `fig4_speedup [scale] [threads]`.

use fdb_bench::{datasets4, fig4_speedup, fmt_secs, print_table};

fn main() {
    let scale = datasets4::scale_from_args();
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("\nFigure 4 (left): LMFAO vs classical one-at-a-time engine, scale {scale}\n");
    let mut rows = Vec::new();
    for ds in datasets4::all(scale) {
        for r in fig4_speedup::measure(&ds, threads) {
            rows.push(vec![
                r.dataset.to_string(),
                r.batch.to_string(),
                r.aggregates.to_string(),
                fmt_secs(r.lmfao_secs),
                fmt_secs(r.classical_secs),
                format!("{:.1}x", r.speedup()),
            ]);
        }
    }
    print_table(&["Dataset", "Batch", "#Aggregates", "LMFAO", "Classical", "Speedup"], &rows);
}
