//! Perf-regression harness: fixed-seed covariance + join benches for every
//! engine, optimized vs `baseline-hash` arms in one run, written to
//! `BENCH_engines.json` so future PRs have a trajectory to compare against.
//!
//! ```text
//! perf_regression [--scale S] [--iters N] [--out PATH] [--baseline-hash | --optimized]
//! ```

use fdb_bench::perf::{self, Arms};

fn main() {
    let mut scale = 1.0f64;
    let mut iters = 3usize;
    let mut out = String::from("BENCH_engines.json");
    let mut arms = Arms::Both;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).expect("--scale S"),
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).expect("--iters N"),
            "--out" => out = args.next().expect("--out PATH"),
            "--baseline-hash" => arms = Arms::BaselineOnly,
            "--optimized" => arms = Arms::OptimizedOnly,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: perf_regression [--scale S] [--iters N] [--out PATH] \
                     [--baseline-hash | --optimized]"
                );
                std::process::exit(2);
            }
        }
    }

    let rows = perf::run_all(scale, iters, arms);
    let cart = (arms == Arms::Both).then(|| perf::cart_sort_accounting(scale));

    fdb_bench::print_table(
        &["bench", "engine", "config", "wall", "groups"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.bench.to_string(),
                    r.engine.to_string(),
                    r.config.to_string(),
                    fdb_bench::fmt_secs(r.wall_ns as f64 * 1e-9),
                    r.groups.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for (bench, engine, x) in perf::speedups(&rows) {
        println!("speedup {bench}/{engine}: {x:.2}x");
    }
    if let Some(c) = &cart {
        println!(
            "cart: {} relations, {} sorts on first fit, {} on second (leaves {})",
            c.relations, c.first_fit_sorts, c.second_fit_sorts, c.leaves
        );
    }

    let json = perf::to_json(&rows, cart.as_ref());
    std::fs::write(&out, json).expect("write BENCH_engines.json");
    println!("wrote {out}");
}
