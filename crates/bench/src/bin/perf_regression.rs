//! Perf-regression harness: fixed-seed covariance + join benches for every
//! engine, optimized vs `baseline-hash` arms in one run, written to
//! `BENCH_engines.json` so future PRs have a trajectory to compare against.
//!
//! ```text
//! perf_regression [--scale S] [--iters N] [--shards K] [--out PATH]
//!                 [--serving-readers R] [--baseline-hash | --optimized]
//!                 [--check-kernels]
//! ```
//!
//! `--shards` sets the fan-out of the sharded-vs-single-shard arm and
//! `--serving-readers` the client-thread count of the serving arm's
//! multi-reader phase (default for both: one per available core).
//! `--check-kernels` turns the kernel-microbench rows into a gate: exit
//! non-zero if any optimized kernel arm measures slower than its baseline
//! twin (beyond a 5% noise margin) — the "optimized path must never lose
//! to the twin it replaces" regression check CI runs on every push.

use fdb_bench::perf::{self, Arms};

fn main() {
    let mut scale = 1.0f64;
    let mut iters = 3usize;
    let mut out = String::from("BENCH_engines.json");
    let mut arms = Arms::Both;
    let mut shards = fdb_core::parallel::default_threads();
    let mut shards_given = false;
    let mut serving_readers = fdb_core::parallel::default_threads().max(2);
    let mut check_kernels = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).expect("--scale S"),
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).expect("--iters N"),
            "--shards" => {
                shards = args.next().and_then(|v| v.parse().ok()).expect("--shards K");
                shards_given = true;
            }
            "--serving-readers" => {
                serving_readers =
                    args.next().and_then(|v| v.parse().ok()).expect("--serving-readers R");
            }
            "--out" => out = args.next().expect("--out PATH"),
            "--baseline-hash" => arms = Arms::BaselineOnly,
            "--optimized" => arms = Arms::OptimizedOnly,
            "--check-kernels" => check_kernels = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: perf_regression [--scale S] [--iters N] [--shards K] [--out PATH] \
                     [--serving-readers R] [--baseline-hash | --optimized] [--check-kernels]"
                );
                std::process::exit(2);
            }
        }
    }

    // The sharded-vs-single-shard pair only runs in the default (Both)
    // mode; don't let an explicit --shards be dropped silently.
    if shards_given && arms != Arms::Both {
        eprintln!(
            "note: --shards has no effect with --baseline-hash/--optimized \
             (the sharded arm runs only in the default both-arms mode)"
        );
    }

    let rows = perf::run_all_with_shards(scale, iters, arms, shards);
    let cart = (arms == Arms::Both).then(|| perf::cart_sort_accounting(scale));
    let views = (arms == Arms::Both).then(|| perf::cart_view_reuse(scale));
    // The IVM arm scales its update count mildly with the dataset.
    let ivm_updates = ((64.0 * scale.sqrt()) as usize).clamp(16, 512);
    let ivm = (arms == Arms::Both).then(|| perf::ivm_maintenance(scale, ivm_updates));
    // Fault-site overhead: cheap enough to always measure, and the JSON
    // records whether the sites were compiled in for this build.
    let fault = perf::fault_overhead(2_000_000);
    // The serving arm: snapshot-read throughput under a live delta
    // stream, 1 reader vs `serving_readers`; mild workload scaling so
    // small `--scale` smoke runs stay quick.
    let serving_queries = ((48.0 * scale.sqrt()) as usize).clamp(8, 256);
    let serving_updates = ((32.0 * scale.sqrt()) as usize).clamp(8, 256);
    let serving = (arms == Arms::Both)
        .then(|| perf::serving_bench(scale, serving_readers, serving_queries, serving_updates));
    // The front-door arm: sustained overload through the bounded-queue
    // admission layer — `--serving-readers` producers hammering a
    // 4-slot queue while 2 readers stream snapshot queries.
    let fd_per_producer = ((24.0 * scale.sqrt()) as usize).clamp(6, 128);
    let frontdoor = (arms == Arms::Both)
        .then(|| perf::frontdoor_bench(scale, serving_readers, 2, fd_per_producer));

    fdb_bench::print_table(
        &["bench", "engine", "config", "wall", "groups", "threads", "morsel_rows"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.bench.to_string(),
                    r.engine.to_string(),
                    r.config.to_string(),
                    fdb_bench::fmt_secs(r.wall_ns as f64 * 1e-9),
                    r.groups.to_string(),
                    r.threads.to_string(),
                    r.morsel_rows.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // Per-kernel throughput: the dataset label carries the row count.
    for r in rows.iter().filter(|r| r.bench == "kernel-microbench") {
        if let Some(n) = r
            .dataset
            .strip_prefix("synthetic-")
            .and_then(|s| s.strip_suffix("rows"))
            .and_then(|s| s.parse::<f64>().ok())
        {
            let rate = n / (r.wall_ns.max(1) as f64 * 1e-9);
            println!("kernel {}/{}: {:.1}M rows/s", r.engine, r.config, rate * 1e-6);
        }
    }
    for (bench, engine, x) in perf::speedups(&rows) {
        println!("speedup {bench}/{engine}: {x:.2}x");
    }
    if let Some(c) = &cart {
        println!(
            "cart: {} relations, {} sorts on first fit, {} on second (leaves {})",
            c.relations, c.first_fit_sorts, c.second_fit_sorts, c.leaves
        );
    }
    if let Some(v) = &views {
        println!(
            "cart-retailer: {} batches, {}/{} views rescanned cold ({} reused, ratio {:.2}), \
             {} rescanned warm; cached-vs-cold {:.2}x",
            v.batches_run,
            v.views_rescanned,
            v.view_lookups,
            v.views_reused,
            v.reuse_ratio(),
            v.warm_views_rescanned,
            v.warm_speedup()
        );
    }

    if let Some(p) = &ivm {
        println!(
            "ivm-retailer: {} fact inserts maintained at {:.0} updates/s \
             ({} views delta-maintained, {} rescans); delta-vs-recompute {:.1}x",
            p.updates,
            p.updates_per_sec(),
            p.delta_maintained,
            p.maintained_rescans,
            p.speedup()
        );
    }

    println!(
        "fault-injection sites ({}): {:.3} ns/check, {:.4}% of one maintained delta",
        if fault.sites_compiled_in { "compiled in" } else { "compiled out" },
        fault.ns_per_check(),
        fault.overhead_fraction_per_delta() * 100.0
    );

    if let Some(p) = &serving {
        println!(
            "serving: {} readers at {:.0} qps vs {:.0} qps single ({:.2}x), \
             {} deltas live; stripe waits sort {} view {} ({}+{} stripes)",
            p.readers,
            p.qps_multi(),
            p.qps_single(),
            p.reader_scaling(),
            p.deltas_applied,
            p.sort_contended,
            p.view_contended,
            p.sort_stripes,
            p.view_stripes
        );
    }

    if let Some(p) = &frontdoor {
        println!(
            "frontdoor: {} producers vs {}-slot queue at {:.0} submits/s \
             (p50 {} ns, p99 {} ns), {} batches for {} submits ({:.2}x coalesced), \
             {:.0} qps read-side",
            p.producers,
            p.queue_capacity,
            p.submit_qps(),
            p.submit_p50_ns,
            p.submit_p99_ns,
            p.batches_committed,
            p.submitted,
            p.coalescing_factor(),
            p.read_qps()
        );
    }

    let json = perf::to_json(
        &rows,
        cart.as_ref(),
        views.as_ref(),
        ivm.as_ref(),
        Some(&fault),
        serving.as_ref(),
        frontdoor.as_ref(),
    );
    std::fs::write(&out, json).expect("write BENCH_engines.json");
    println!("wrote {out}");

    // The kernel gate runs after the JSON lands, so a failing run still
    // leaves the numbers on disk (and in the CI artifact) to diagnose.
    // A 5% noise margin keeps near-parity pairs from flaking the gate on
    // loaded runners; real regressions (a fast path silently degrading to
    // its twin's shape) overshoot it by far more.
    if check_kernels {
        const NOISE_MARGIN: f64 = 1.05;
        let mut losses = 0usize;
        for opt in rows.iter().filter(|r| r.bench == "kernel-microbench" && r.config == "optimized")
        {
            let Some(base) = rows.iter().find(|b| {
                b.bench == opt.bench && b.engine == opt.engine && b.config == "baseline-hash"
            }) else {
                continue;
            };
            if opt.wall_ns as f64 > base.wall_ns as f64 * NOISE_MARGIN {
                eprintln!(
                    "kernel regression: {} optimized {} ns > baseline {} ns ({:.2}x slower)",
                    opt.engine,
                    opt.wall_ns,
                    base.wall_ns,
                    opt.wall_ns as f64 / base.wall_ns.max(1) as f64
                );
                losses += 1;
            }
        }
        if losses > 0 {
            eprintln!("--check-kernels: {losses} optimized kernel arm(s) lost to their twin");
            std::process::exit(1);
        }
        println!("--check-kernels: every optimized kernel arm beat its baseline twin");
    }
}
