//! Regenerates Figure 3 (right): structure-agnostic vs structure-aware
//! end-to-end learning. Usage: `fig3_endtoend [scale] [threads]`.

use fdb_bench::{fig3, fmt_bytes, fmt_secs, print_table};
use fdb_datasets::{retailer, RetailerConfig};

fn main() {
    let scale = fdb_bench::datasets4::scale_from_args();
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let ds = retailer(RetailerConfig::scaled(scale));
    println!(
        "\nFigure 3 (right): end-to-end linear regression, Retailer scale {scale} ({} inventory rows)\n",
        ds.db.get("Inventory").expect("fact").len()
    );
    let r = fig3::end_to_end(&ds, threads);
    let rows = vec![
        vec![
            "Join".into(),
            fmt_secs(r.join_secs),
            fmt_bytes(r.matrix_bytes),
            "—".into(),
            "—".into(),
        ],
        vec![
            "Export+Import".into(),
            fmt_secs(r.export_secs),
            fmt_bytes(r.matrix_bytes),
            "—".into(),
            "—".into(),
        ],
        vec!["Shuffling".into(), fmt_secs(r.shuffle_secs), "—".into(), "—".into(), "—".into()],
        vec![
            "Query batch".into(),
            "—".into(),
            "—".into(),
            fmt_secs(r.batch_secs),
            fmt_bytes(r.stats_bytes),
        ],
        vec![
            "Grad Descent".into(),
            fmt_secs(r.sgd_secs),
            "—".into(),
            fmt_secs(r.gd_secs),
            "—".into(),
        ],
        vec![
            "Total".into(),
            fmt_secs(r.agnostic_total),
            "—".into(),
            fmt_secs(r.aware_total),
            "—".into(),
        ],
    ];
    print_table(
        &["Step", "agnostic (join+SGD)", "agn. size", "aware (LMFAO)", "aware size"],
        &rows,
    );
    println!(
        "\nSpeedup: {:.0}x.  RMSE on 2% held-out: structure-agnostic {:.4}, structure-aware {:.4}.",
        r.agnostic_total / r.aware_total.max(1e-12),
        r.sgd_rmse,
        r.lmfao_rmse
    );
}
