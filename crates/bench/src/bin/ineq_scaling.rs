//! §2.3 scaling table: additive-inequality aggregates, nested loop vs
//! sort+prefix. Usage: `ineq_scaling [max_exponent]` (sizes 2^10..2^max).

use fdb_bench::{fmt_secs, ineq_scaling, print_table};

fn main() {
    let max_exp: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(14);
    let sizes: Vec<usize> = (10..=max_exp).map(|e| 1usize << e).collect();
    println!("\n§2.3: additive-inequality aggregate, naive O(n²) vs sort+prefix O(n log n)\n");
    let rows: Vec<Vec<String>> = ineq_scaling::sweep(&sizes, 42)
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                fmt_secs(r.naive_secs),
                fmt_secs(r.fast_secs),
                format!("{:.1}x", r.naive_secs / r.fast_secs.max(1e-12)),
            ]
        })
        .collect();
    print_table(&["n per side", "Nested loop", "Sort+prefix", "Speedup"], &rows);
}
