//! Regenerates Figure 5: number of aggregates per dataset × workload.
//! Usage: `fig5_agg_counts [scale]`.

use fdb_bench::{datasets4, fig5, print_table};

fn main() {
    let scale = datasets4::scale_from_args();
    println!("\nFigure 5: number of aggregates per dataset and workload\n");
    let rows: Vec<Vec<String>> = datasets4::all(scale)
        .iter()
        .map(|ds| {
            let r = fig5::count_row(ds);
            vec![
                r.dataset.to_string(),
                r.covariance.to_string(),
                r.decision_node.to_string(),
                r.mutual_info.to_string(),
                r.kmeans.to_string(),
            ]
        })
        .collect();
    // Transposed like the paper: workloads as rows.
    let headers = ["Workload", "Retailer", "Favorita", "Yelp", "TPC-DS"];
    let table = vec![
        vec![
            "Covar. matrix".to_string(),
            rows[0][1].clone(),
            rows[1][1].clone(),
            rows[2][1].clone(),
            rows[3][1].clone(),
        ],
        vec![
            "Decision node".to_string(),
            rows[0][2].clone(),
            rows[1][2].clone(),
            rows[2][2].clone(),
            rows[3][2].clone(),
        ],
        vec![
            "Mutual inf.".to_string(),
            rows[0][3].clone(),
            rows[1][3].clone(),
            rows[2][3].clone(),
            rows[3][3].clone(),
        ],
        vec![
            "k-means".to_string(),
            rows[0][4].clone(),
            rows[1][4].clone(),
            rows[2][4].clone(),
            rows[3][4].clone(),
        ],
    ];
    print_table(&headers, &table);
}
