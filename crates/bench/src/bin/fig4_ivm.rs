//! Regenerates Figure 4 (right): covariance-matrix maintenance throughput
//! under inserts — F-IVM vs higher-order vs first-order IVM.
//! Usage: `fig4_ivm [scale] [stream_limit]`.

use fdb_bench::fig4_ivm::{run, Strategy};
use fdb_bench::print_table;
use fdb_datasets::{retailer, RetailerConfig};

fn main() {
    let scale = fdb_bench::datasets4::scale_from_args();
    let limit: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let ds = retailer(RetailerConfig::scaled(scale));
    println!(
        "\nFigure 4 (right): IVM throughput (tuples/sec), retailer insert stream of {limit}\n"
    );
    let mut rows = Vec::new();
    for strat in [Strategy::Fivm, Strategy::HigherOrder, Strategy::FirstOrder] {
        let series = run(&ds, strat, limit, 10);
        for (frac, tput) in &series {
            rows.push(vec![
                strat.name().to_string(),
                format!("{:.1}", frac),
                format!("{:.0}", tput),
            ]);
        }
        let avg: f64 = series.iter().map(|&(_, t)| t).sum::<f64>() / series.len() as f64;
        rows.push(vec![strat.name().to_string(), "avg".into(), format!("{avg:.0}")]);
    }
    print_table(&["Strategy", "Stream fraction", "Throughput (tuples/s)"], &rows);
}
