//! A minimal, dependency-free drop-in for the subset of the `rand` crate
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` / `gen_bool`, `seq::SliceRandom::shuffle`).
//!
//! The build environment is offline, so the real `rand` cannot be fetched;
//! workspace crates depend on this package under the name `rand`
//! (`rand = { package = "fdb-randstub", ... }`). The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic per seed, which is
//! all the seeded synthetic data generators and tests require.

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// xoshiro256++ — a small, fast, statistically solid PRNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors
            // recommend for state initialisation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl super::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 · span — irrelevant for the small
                // spans the data generators draw from.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(i8, i16, i32, i64, u8, u16, u32, usize, u64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// The user-facing sampling interface (blanket-implemented for any
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws uniformly from the half-open range `lo..hi`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .all(|_| StdRng::seed_from_u64(42).gen_range(0..100i64) == c.gen_range(0..100i64));
        assert!(!same);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9i64);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<i64> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
