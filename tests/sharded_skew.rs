//! Morsel scheduling on a skew-clustered fact table.
//!
//! The Zipf snowflake sorts its fact by a power-law key, so equal-row
//! contiguous shards carry very different group structure — the shape
//! that left cores idle under the old one-thread-per-shard model. The
//! regression contract: `ShardedEngine` over-partitions the fact into
//! more morsels than workers (so finished workers steal the stragglers'
//! queue), reports that split through `last_run_stats`, and still merges
//! to exactly the unsharded result.

use fdb::datasets::{zipf_snowflake, ZipfConfig};
use fdb::lmfao::covariance_batch;
use fdb::prelude::*;

mod common;

fn zipf_query(ds: &fdb::datasets::Dataset) -> AggQuery {
    let rels = ds.relation_refs();
    AggQuery::new(&rels, covariance_batch(&["a", "b", "v"], &["grp"]))
}

#[test]
fn skewed_fact_splits_into_morsels_and_agrees() {
    let ds = zipf_snowflake(ZipfConfig { fact_rows: 20_000, dim_rows: 32, skew: 2.0, seed: 5 });
    let q = zipf_query(&ds);
    let seq = EngineConfig::sequential();
    let base = LmfaoEngine::with_config(seq).run(&ds.db, &q).unwrap();

    let sharded = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 4);
    let got = sharded.run(&ds.db, &q).unwrap();
    common::assert_results_match(&base, &got, "zipf sharded x4", q.batch.len(), 1e-9);

    // The heavy key occupies whole morsels (the fact is clustered), so the
    // scheduler must have split the fact finer than one chunk per worker.
    let stats = sharded.last_run_stats().expect("sharded run records its morsel split");
    assert_eq!(stats.workers, 4, "all requested workers engaged");
    assert!(
        stats.morsels > stats.workers,
        "skew defense: {} morsels for {} workers",
        stats.morsels,
        stats.workers
    );
    assert_eq!(
        stats.per_worker.iter().sum::<usize>(),
        stats.morsels,
        "every morsel accounted to exactly one worker"
    );
}

#[test]
fn smaller_morsels_split_finer_and_still_agree() {
    let ds = zipf_snowflake(ZipfConfig { fact_rows: 20_000, dim_rows: 32, skew: 2.0, seed: 5 });
    let q = zipf_query(&ds);
    let seq = EngineConfig::sequential();
    let base = LmfaoEngine::with_config(seq).run(&ds.db, &q).unwrap();

    let coarse = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 4);
    coarse.run(&ds.db, &q).unwrap();
    let coarse_units = coarse.last_run_stats().expect("stats").morsels;

    let fine = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 4).with_morsel_rows(512);
    let got = fine.run(&ds.db, &q).unwrap();
    common::assert_results_match(&base, &got, "zipf fine morsels", q.batch.len(), 1e-9);
    let fine_units = fine.last_run_stats().expect("stats").morsels;
    assert!(
        fine_units > coarse_units,
        "morsel_rows 512 must over-partition further: {fine_units} vs {coarse_units}"
    );
}

#[test]
fn single_shard_runs_unwrapped_without_stats() {
    let ds = zipf_snowflake(ZipfConfig::tiny());
    let q = zipf_query(&ds);
    let seq = EngineConfig::sequential();
    let base = LmfaoEngine::with_config(seq).run(&ds.db, &q).unwrap();
    let single = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 1);
    let got = single.run(&ds.db, &q).unwrap();
    common::assert_results_match(&base, &got, "zipf single shard", q.batch.len(), 1e-9);
    assert!(single.last_run_stats().is_none(), "unwrapped runs record no morsel split");
}
