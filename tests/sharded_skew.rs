//! Morsel scheduling on a skew-clustered fact table.
//!
//! The Zipf snowflake sorts its fact by a power-law key, so equal-row
//! contiguous shards carry very different group structure — the shape
//! that left cores idle under the old one-thread-per-shard model. The
//! regression contract: `ShardedEngine` over-partitions the fact into
//! more morsels than workers (so finished workers steal the stragglers'
//! queue), reports that split through `last_run_stats`, and still merges
//! to exactly the unsharded result.

use fdb::datasets::{zipf_snowflake, ZipfConfig};
use fdb::lmfao::covariance_batch;
use fdb::prelude::*;

mod common;

fn zipf_query(ds: &fdb::datasets::Dataset) -> AggQuery {
    let rels = ds.relation_refs();
    AggQuery::new(&rels, covariance_batch(&["a", "b", "v"], &["grp"]))
}

#[test]
fn skewed_fact_splits_into_morsels_and_agrees() {
    let ds = zipf_snowflake(ZipfConfig { fact_rows: 20_000, dim_rows: 32, skew: 2.0, seed: 5 });
    let q = zipf_query(&ds);
    let seq = EngineConfig::sequential();
    let base = LmfaoEngine::with_config(seq).run(&ds.db, &q).unwrap();

    let sharded = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 4);
    let got = sharded.run(&ds.db, &q).unwrap();
    common::assert_results_match(&base, &got, "zipf sharded x4", q.batch.len(), 1e-9);

    // The heavy key occupies whole morsels (the fact is clustered), so the
    // scheduler must have split the fact finer than one chunk per worker.
    let stats = sharded.last_run_stats().expect("sharded run records its morsel split");
    assert_eq!(stats.workers, 4, "all requested workers engaged");
    assert!(
        stats.morsels > stats.workers,
        "skew defense: {} morsels for {} workers",
        stats.morsels,
        stats.workers
    );
    assert_eq!(
        stats.per_worker.iter().sum::<usize>(),
        stats.morsels,
        "every morsel accounted to exactly one worker"
    );
}

#[test]
fn smaller_morsels_split_finer_and_still_agree() {
    let ds = zipf_snowflake(ZipfConfig { fact_rows: 20_000, dim_rows: 32, skew: 2.0, seed: 5 });
    let q = zipf_query(&ds);
    let seq = EngineConfig::sequential();
    let base = LmfaoEngine::with_config(seq).run(&ds.db, &q).unwrap();

    let coarse = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 4);
    coarse.run(&ds.db, &q).unwrap();
    let coarse_units = coarse.last_run_stats().expect("stats").morsels;

    let fine = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 4).with_morsel_rows(512);
    let got = fine.run(&ds.db, &q).unwrap();
    common::assert_results_match(&base, &got, "zipf fine morsels", q.batch.len(), 1e-9);
    let fine_units = fine.last_run_stats().expect("stats").morsels;
    assert!(
        fine_units > coarse_units,
        "morsel_rows 512 must over-partition further: {fine_units} vs {coarse_units}"
    );
}

/// The shard partials now combine by pairwise *tree* merge instead of a
/// serial coordinator fold. On integer-valued aggregates every float sum
/// is exact, so any merge association must land on the bit-identical
/// result — this pins tree merge ≡ serial merge (the single-shard run,
/// which merges nothing) on the skew-clustered fact across shard counts,
/// including the odd-tail shapes (3, 5) the pairing must carry through.
#[test]
fn tree_merge_matches_serial_on_skewed_integer_data() {
    // A hand-built clustered-skew snowflake with *integer* measures: the
    // zipf generator's measures are floats, whose sums depend on merge
    // association — integer payloads keep every partial sum exact, so any
    // association must land on the bit-identical result. The fact's first
    // half is one heavy key (clustered, as a sorted power-law fact would
    // be), the rest cycles the remaining dimension keys.
    const FACT_ROWS: usize = 20_000;
    const DIM_KEYS: i64 = 64;
    let mut fact = Relation::new(Schema::of(&[("k", AttrType::Int), ("x", AttrType::Int)]));
    for i in 0..FACT_ROWS {
        let k = if i < FACT_ROWS / 2 { 0 } else { (i % (DIM_KEYS as usize - 1)) as i64 + 1 };
        let x = (i % 17) as i64 - 8;
        fact.push_row(&[Value::Int(k), Value::Int(x)]).unwrap();
    }
    let mut dim = Relation::new(Schema::of(&[
        ("k", AttrType::Int),
        ("y", AttrType::Int),
        ("g", AttrType::Categorical),
    ]));
    for k in 0..DIM_KEYS {
        dim.push_row(&[Value::Int(k), Value::Int(k * 3 - 7), Value::Int(k % 5)]).unwrap();
    }
    let mut db = Database::new();
    db.add("F", fact);
    db.add("D", dim);
    let batch = {
        let mut b = AggBatch::new();
        b.push(Aggregate::count());
        b.push(Aggregate::count().by(&["g"]));
        b.push(Aggregate::sum("x").by(&["g"]));
        b.push(Aggregate::sum_prod("x", "y").by(&["g"]));
        b
    };
    let q = AggQuery::new(&["F", "D"], batch);
    let seq = EngineConfig::sequential();
    let base = LmfaoEngine::with_config(seq).run(&db, &q).unwrap();
    for shards in [2usize, 3, 4, 5] {
        let sharded = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), shards);
        let got = sharded.run(&db, &q).unwrap();
        // Tolerance zero: integer payloads make the merge exact, so the
        // tree association may not move a single bit.
        common::assert_results_match(&base, &got, &format!("tree merge x{shards}"), 4, 0.0);
    }
}

#[test]
fn single_shard_runs_unwrapped_without_stats() {
    let ds = zipf_snowflake(ZipfConfig::tiny());
    let q = zipf_query(&ds);
    let seq = EngineConfig::sequential();
    let base = LmfaoEngine::with_config(seq).run(&ds.db, &q).unwrap();
    let single = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 1);
    let got = single.run(&ds.db, &q).unwrap();
    common::assert_results_match(&base, &got, "zipf single shard", q.batch.len(), 1e-9);
    assert!(single.last_run_stats().is_none(), "unwrapped runs record no morsel split");
}
