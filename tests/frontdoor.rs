//! Integration suite for the resilient serving front door.
//!
//! Three layers over [`FrontDoor`]:
//!
//! * **Breaker lifecycle** — a flaky engine whose *incremental* path
//!   fails while recompute keeps working drives the full state machine:
//!   trip → degraded group commits → half-open probe → relapse → probe →
//!   recovery, with no admitted delta lost and every published epoch
//!   bit-identical to a cold run.
//! * **Panel agreement** — every engine composition behind a front door
//!   serves, after each committed batch, exactly what a cold run over an
//!   equivalently mutated shadow database computes.
//! * **Concurrency** — producers race the writer under a small queue
//!   while readers pin snapshots; every reader-observed `(epoch, result)`
//!   pair is verified bit-identical to a cold recompute over the very
//!   database the snapshot pinned.

use fdb::data::{AttrType, DataError, Database, Delta, Relation, Schema, Value};
use fdb::lmfao::serve::EpochDb;
use fdb::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn db() -> Database {
    let mut db = Database::new();
    let mut r = Relation::new(Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]));
    for (k, x) in [(1, 1.0), (2, 2.0), (3, 3.0)] {
        r.push_row(&[Value::Int(k), Value::F64(x)]).unwrap();
    }
    db.add("R", r);
    db
}

fn sum_query() -> AggQuery {
    let mut batch = AggBatch::new();
    batch.push(Aggregate::sum("x"));
    batch.push(Aggregate::count());
    AggQuery::new(&["R"], batch)
}

fn row(k: i64, x: f64) -> Vec<Value> {
    vec![Value::Int(k), Value::F64(x)]
}

/// Exact equality — same group attrs, same represented keys, same bits.
fn assert_bit_identical(expect: &BatchResult, got: &BatchResult, tag: &str, naggs: usize) {
    for i in 0..naggs {
        assert_eq!(expect.groups[i], got.groups[i], "{tag}: agg {i}: group attrs");
        assert_eq!(expect.grouped(i).len(), got.grouped(i).len(), "{tag}: agg {i}: key count");
        for (k, v) in expect.grouped(i) {
            let g = got.grouped(i).get(k).copied();
            assert_eq!(
                g.map(f64::to_bits),
                Some(v.to_bits()),
                "{tag}: agg {i} key {k:?}: expected {v}, got {g:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Breaker lifecycle with a flaky incremental engine
// ---------------------------------------------------------------------------

/// Wraps [`LmfaoEngine`]: while `incremental_failures > 0` every
/// *incremental* maintenance call fails transiently, but the degraded
/// recompute path (and cold `run`) keeps working — the exact failure
/// model the circuit breaker exists for.
struct FlakyEngine {
    inner: LmfaoEngine,
    incremental_failures: AtomicU32,
}

impl FlakyEngine {
    fn failing(n: u32) -> Self {
        Self {
            inner: LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() }),
            incremental_failures: AtomicU32::new(n),
        }
    }
}

impl Engine for FlakyEngine {
    fn name(&self) -> &'static str {
        "flaky-lmfao"
    }
    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        self.inner.run(db, q)
    }
}

impl MaintainableEngine for FlakyEngine {
    fn prepare(&self, db: &Database, q: &AggQuery) -> Result<MaintState, DataError> {
        self.inner.prepare(db, q)
    }
    fn apply_delta_kind(
        &self,
        st: &mut MaintState,
        delta: &Delta,
    ) -> Result<BatchResult, DataError> {
        if !st.is_recompute() && self.incremental_failures.load(Ordering::SeqCst) > 0 {
            self.incremental_failures.fetch_sub(1, Ordering::SeqCst);
            return Err(DataError::Injected("flaky-incremental".into()));
        }
        self.inner.apply_delta_kind(st, delta)
    }
    fn eval(&self, st: &mut MaintState) -> Result<BatchResult, DataError> {
        self.inner.eval(st)
    }
}

#[test]
fn breaker_trips_degrades_probes_relapses_and_recovers_without_losing_deltas() {
    // retry_max 1 → a failing batch burns 2 incremental attempts;
    // threshold 1 → the first exhausted batch trips (and is re-applied
    // degraded, which already counts as the first degraded success);
    // probe_after 2 → one more degraded batch arms the probe. 4 scripted
    // failures therefore walk: trip → degraded → probe+relapse (trip
    // again) → degraded → probe+recovery.
    let cfg = FrontDoorConfig {
        retry_max: 1,
        breaker_threshold: 1,
        breaker_probe_after: 2,
        backoff_base: Duration::from_micros(10),
        ..Default::default()
    };
    let fd = FrontDoor::new(FlakyEngine::failing(4), &db(), &sum_query(), cfg).unwrap();
    let e0 = fd.epoch();
    let mut shadow = db();

    let expect_states = [
        BreakerState::Open,     // b1: exhausted → trip, committed degraded
        BreakerState::HalfOpen, // b2: degraded success → probe armed
        BreakerState::Open,     // b3: probe re-prepares, relapses → re-trip
        BreakerState::HalfOpen, // b4: degraded success again
        BreakerState::Closed,   // b5: probe succeeds → recovery
    ];
    for (i, want) in expect_states.iter().enumerate() {
        let d = Delta::insert("R", row(10 + i as i64, 1.0));
        shadow.apply_delta(&d).unwrap();
        fd.submit(d).unwrap();
        fd.flush();
        assert_eq!(fd.breaker_state(), *want, "after batch {}", i + 1);
        assert_eq!(fd.epoch(), e0 + i as u64 + 1, "batch {} still committed", i + 1);
    }

    let s = fd.stats();
    assert_eq!(s.batches_committed, 5, "no admitted delta was lost");
    assert_eq!(s.batches_failed, 0);
    assert_eq!(s.retries, 2, "one retry per exhausted batch (retry_max = 1)");
    assert_eq!(s.breaker_trips, 2, "initial trip plus the half-open relapse");
    assert_eq!(s.breaker_probes, 2);
    assert_eq!(s.breaker_recoveries, 1);
    assert!(!fd.serving().is_degraded(), "recovery restored the incremental state");

    let cold = FlatEngine.run(&shadow, &sum_query()).unwrap();
    let (epoch, got) = fd.query().unwrap();
    assert_eq!(epoch, e0 + 5);
    assert_bit_identical(&cold, &got, "post-recovery", 2);
}

#[test]
fn degraded_mode_keeps_committing_while_incremental_stays_broken() {
    let cfg = FrontDoorConfig {
        retry_max: 0,
        breaker_threshold: 2,
        breaker_probe_after: 100, // stay degraded for this test
        backoff_base: Duration::from_micros(10),
        ..Default::default()
    };
    let fd = FrontDoor::new(FlakyEngine::failing(u32::MAX), &db(), &sum_query(), cfg).unwrap();
    let e0 = fd.epoch();
    // Two exhausted batches trip the breaker (threshold 2, no retries);
    // the second one is re-applied degraded at the trip, so only the
    // first is lost.
    for k in 0..6 {
        fd.submit(Delta::insert("R", row(20 + k, 1.0))).unwrap();
        fd.flush();
    }
    let s = fd.stats();
    assert_eq!(fd.breaker_state(), BreakerState::Open);
    assert!(fd.serving().is_degraded());
    assert_eq!(s.breaker_trips, 1);
    assert_eq!(s.batches_failed, 1, "only the pre-trip batch was dropped");
    assert_eq!(s.batches_committed, 5, "everything after the trip commits degraded");
    assert_eq!(fd.epoch(), e0 + 5);
    assert_eq!(fd.query().unwrap().1.scalar(1), 3.0 + 5.0);
}

// ---------------------------------------------------------------------------
// Panel agreement
// ---------------------------------------------------------------------------

type DynEngine = Box<dyn MaintainableEngine + Send + Sync>;

fn panel() -> Vec<(String, DynEngine)> {
    let seq = EngineConfig { threads: 1, ..Default::default() };
    vec![
        ("flat".into(), Box::new(FlatEngine)),
        ("lmfao".into(), Box::new(LmfaoEngine::with_config(seq))),
        ("dispatch".into(), Box::new(DispatchEngine::new())),
        (
            "sharded-lmfao".into(),
            Box::new(
                ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 3)
                    .with_min_rows_per_shard(1),
            ),
        ),
    ]
}

#[test]
fn every_panel_composition_serves_cold_identical_epochs_through_the_front_door() {
    let db = fdb::datasets::dish::dish_database();
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("price"));
    batch.push(Aggregate::sum("price").by(&["day", "customer"]));
    let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
    let dish_row = |d: i64, i: i64| vec![Value::Int(d), Value::Int(i)];
    let order_row = db.get("Orders").unwrap().row_vec(0);
    let deltas = [
        Delta::insert("Orders", order_row.clone()),
        Delta::insert("Dish", dish_row(0, 3)),
        Delta::delete("Orders", order_row),
        Delta::new("Dish").with_insert(dish_row(1, 0)).with_delete(dish_row(0, 3)),
    ];
    for (name, engine) in panel() {
        let fd = FrontDoor::new(engine, &db, &q, FrontDoorConfig::default())
            .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
        let e0 = fd.epoch();
        let mut shadow = db.clone();
        for (i, d) in deltas.iter().enumerate() {
            shadow.apply_delta(d).unwrap();
            fd.submit(d.clone()).unwrap_or_else(|e| panic!("{name} delta {i}: {e}"));
            fd.flush();
            assert_eq!(fd.epoch(), e0 + i as u64 + 1, "{name}: flush-per-submit, one epoch each");
            let cold = fd
                .serving()
                .engine()
                .run(&shadow, &q)
                .unwrap_or_else(|e| panic!("{name} cold {i}: {e}"));
            let (_, got) = fd.query().unwrap();
            assert_bit_identical(&cold, &got, &format!("{name} epoch {}", i + 1), q.batch.len());
        }
        let (stats, _serving) = fd.close();
        assert_eq!(stats.batches_committed, deltas.len() as u64, "{name}");
        assert_eq!(stats.batches_failed, 0, "{name}");
    }
}

// ---------------------------------------------------------------------------
// Concurrency: racing producers, pinned readers
// ---------------------------------------------------------------------------

#[test]
fn racing_producers_and_readers_observe_only_cold_identical_snapshots() {
    let q = sum_query();
    let cfg = FrontDoorConfig {
        queue_capacity: 4, // small on purpose: producers hit backpressure
        submit_timeout: Duration::from_secs(30),
        ..Default::default()
    };
    let fd = FrontDoor::new(FlatEngine, &db(), &q, cfg).unwrap();
    let observed: Mutex<Vec<(Arc<EpochDb>, BatchResult)>> = Mutex::new(Vec::new());
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (fd, observed, done) = (&fd, &observed, &done);
        for r in 0..3 {
            s.spawn(move || {
                let mut served = 0usize;
                while !done.load(Ordering::Acquire) || served < 3 {
                    let snap = fd.snapshot();
                    let got =
                        fd.serving().query_at(&snap).unwrap_or_else(|e| panic!("reader {r}: {e}"));
                    observed.lock().unwrap().push((snap, got));
                    served += 1;
                }
            });
        }
        for t in 0..3i64 {
            s.spawn(move || {
                for k in 0..12 {
                    fd.submit(Delta::insert("R", row(100 * t + k, 1.0))).unwrap();
                }
            });
        }
        s.spawn(move || {
            // Producers finish, then the queue drains: release readers.
            while fd.stats().submitted < 36 {
                std::thread::yield_now();
            }
            fd.flush();
            done.store(true, Ordering::Release);
        });
    });

    // Every reader-observed (epoch, result) pair must be bit-identical to
    // a cold recompute over the very database its snapshot pinned.
    let observed = observed.into_inner().unwrap();
    assert!(observed.len() >= 9);
    for (snap, got) in &observed {
        let cold = FlatEngine.run(snap.database(), &q).unwrap();
        assert_bit_identical(&cold, got, &format!("epoch {}", snap.epoch()), 2);
    }
    let s = fd.stats();
    assert_eq!(s.submitted, 36);
    assert_eq!(s.queued, 0);
    assert_eq!(s.batches_committed + s.coalesced, 36, "every admitted delta resolved");
    assert_eq!(s.batches_failed, 0);
    assert_eq!(fd.query().unwrap().1.scalar(1), 3.0 + 36.0);
}
