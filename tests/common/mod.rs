//! Shared assertions for the integration-test binaries (not itself a test
//! target: files under `tests/<dir>/` are only compiled via `mod common;`).

use fdb::prelude::BatchResult;

/// Asserts two batch results carry identical groups, identical
/// *represented key sets* (which is how the exactly-zero-dropped contract
/// is held across engines, shard merges, and dense/hash representations),
/// and values equal within relative tolerance `tol` — the caller's float
/// round-off allowance for differing summation orders.
pub fn assert_results_match(
    base: &BatchResult,
    got: &BatchResult,
    tag: &str,
    naggs: usize,
    tol: f64,
) {
    for i in 0..naggs {
        assert_eq!(base.groups[i], got.groups[i], "{tag}: agg {i}: group attrs");
        assert_eq!(
            base.grouped(i).len(),
            got.grouped(i).len(),
            "{tag}: agg {i}: represented key count"
        );
        for (k, v) in base.grouped(i) {
            let g = got.grouped(i).get(k).copied().unwrap_or(f64::NAN);
            assert!((v - g).abs() <= tol * (1.0 + v.abs()), "{tag}: agg {i} key {k:?}: {v} vs {g}");
        }
    }
}
