//! Cache correctness: cached and cold evaluation agree under relation
//! mutations and filter permutations across batches.
//!
//! The cross-batch `ViewCache` serves materialized subtree views keyed on
//! plan signatures plus relation content ids. Two things must therefore
//! hold on *any* sequence of runs:
//!
//! * **mutation invalidates** — a mutated relation refreshes its
//!   `data_id`, so no later batch may ever see a stale view;
//! * **filter permutation is plan-equivalent** — reordering a conjunctive
//!   filter list (or revisiting an earlier threshold) may hit cached
//!   views, and the served results must equal a cold evaluation exactly.
//!
//! Every round cross-checks the cache-using engines (LMFAO with the
//! default budget, dispatch, sharded LMFAO, factorized with its sort
//! cache) against the stateless flat baseline *and* a cache-bypassing
//! LMFAO run, on dish, retailer, and random snowflakes.

use fdb::data::{AttrType, Database, Relation, Schema, Value};
use fdb::lmfao::{covariance_batch, decision_node_batch};
use fdb::prelude::*;
use proptest::prelude::*;

mod common;

/// All engines that must agree with the flat baseline, cache-warm or not.
/// `lmfao-cold` bypasses the view cache entirely (`view_cache_bytes: 0`),
/// so any divergence between it and `lmfao-cached` is a stale or
/// mis-keyed cache entry.
fn engines() -> Vec<(&'static str, Box<dyn Engine>)> {
    let seq = EngineConfig::sequential();
    let cold = EngineConfig { view_cache_bytes: 0, ..seq };
    vec![
        ("factorized", Box::new(FactorizedEngine::new())),
        ("lmfao-cached", Box::new(LmfaoEngine::with_config(seq))),
        ("lmfao-cold", Box::new(LmfaoEngine::with_config(cold))),
        ("dispatch", Box::new(DispatchEngine::with_config(seq))),
        (
            "sharded-lmfao",
            Box::new(
                ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 3)
                    .with_min_rows_per_shard(1),
            ),
        ),
    ]
}

fn assert_all_agree(db: &Database, q: &AggQuery, tag: &str) {
    let base = FlatEngine.run(db, q).unwrap();
    for (name, e) in engines() {
        let got = e.run(db, q).unwrap();
        common::assert_results_match(&base, &got, &format!("{tag}/{name}"), q.batch.len(), 1e-9);
    }
}

/// The same random 3-relation snowflake family as `tests/sharded_agree.rs`.
fn snowflake(rows: &[(i64, i64, i8)], d1: &[(i64, i8)], d2: &[(i64, i8)]) -> Database {
    let mut db = Database::new();
    let mut f = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("c", AttrType::Categorical),
        ("x", AttrType::Double),
    ]));
    for &(a, b, x) in rows {
        let c = (a + 2 * b) % 3;
        f.push_row(&[Value::Int(a), Value::Int(b), Value::Int(c), Value::F64(x as f64)]).unwrap();
    }
    let mut r1 = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("w", AttrType::Categorical),
        ("u", AttrType::Double),
    ]));
    for &(a, u) in d1 {
        r1.push_row(&[Value::Int(a), Value::Int(a % 2), Value::F64(u as f64)]).unwrap();
    }
    let mut r2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
    for &(b, v) in d2 {
        r2.push_row(&[Value::Int(b), Value::F64(v as f64)]).unwrap();
    }
    db.add("F", f);
    db.add("D1", r1);
    db.add("D2", r2);
    db
}

/// A filtered batch over the snowflake with the conjunction in a given
/// order — permutations are plan-equivalent and must agree exactly.
fn filtered_batch(t1: f64, t2: f64, reversed: bool) -> AggBatch {
    let filters: Vec<(&str, FilterOp)> = vec![("u", FilterOp::Ge(t1)), ("x", FilterOp::Lt(t2))];
    let order: Vec<_> = if reversed { filters.into_iter().rev().collect() } else { filters };
    let mut b = AggBatch::new();
    b.push(Aggregate::count());
    let mut sum = Aggregate::sum("x");
    let mut grouped = Aggregate::count().by(&["c", "w"]);
    for (a, op) in &order {
        sum = sum.filtered(a, op.clone());
        grouped = grouped.filtered(a, op.clone());
    }
    b.push(sum);
    b.push(grouped);
    b.push(Aggregate::sum("v").by(&["w"]));
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random interleavings of relation mutations and filtered batches:
    /// after every step, cached engines must agree with both the flat
    /// baseline and a cache-bypassing LMFAO run, and a batch whose filter
    /// conjunction is merely permuted must reproduce the original result.
    #[test]
    fn cached_and_cold_agree_under_mutations_and_filter_permutations(
        rows in proptest::collection::vec((0i64..4, 0i64..4, -5i8..5), 1..20),
        d1 in proptest::collection::vec((0i64..4, -5i8..5), 1..8),
        d2 in proptest::collection::vec((0i64..4, -5i8..5), 1..8),
        ops in proptest::collection::vec((0usize..3, -4i8..4, any::<bool>()), 1..5),
    ) {
        let mut db = snowflake(&rows, &d1, &d2);
        let rels = ["F", "D1", "D2"];
        for (step, (target, t, mutate)) in ops.into_iter().enumerate() {
            if mutate {
                // Duplicate an existing row: refreshes the relation's
                // data_id, so every covering cached view must be bypassed.
                let name = rels[target % 3];
                let row = db.get(name).unwrap().row_vec(0);
                db.get_mut(name).unwrap().push_row(&row).unwrap();
            }
            let q = AggQuery::new(&rels, filtered_batch(t as f64, (t + 1) as f64, false));
            assert_all_agree(&db, &q, &format!("step {step}"));
            // The permuted conjunction is the same plan: cached engines
            // may serve it entirely from warm views and must still match.
            let qp = AggQuery::new(&rels, filtered_batch(t as f64, (t + 1) as f64, true));
            assert_all_agree(&db, &qp, &format!("step {step} permuted"));
            // And an unfiltered covariance batch interleaved between the
            // filtered ones (dimension subtrees stay warm across shapes).
            let cov = AggQuery::new(&rels, covariance_batch(&["x", "u", "v"], &["c"]));
            assert_all_agree(&db, &cov, &format!("step {step} cov"));
        }
    }
}

/// A decision-tree-style threshold walk on retailer: one batch per
/// "node", thresholds moving and *revisiting* earlier values (revisits
/// are exactly the warm-cache case), with a mid-walk mutation.
#[test]
fn retailer_threshold_walk_cached_vs_cold() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let mut db = ds.db;
    let rels: Vec<&str> = vec!["Inventory", "Location", "Census", "Item", "Weather"];
    let run_walk = |db: &Database, tag: &str| {
        for (i, t) in [5.0, 15.0, 5.0, 10.0, 5.0].iter().enumerate() {
            let batch = decision_node_batch(
                &["prize", "maxtemp"],
                &["rain"],
                "inventoryunits",
                2,
                2,
                |attr, j| match attr {
                    "prize" => t + 10.0 * j as f64,
                    _ => t * (j as f64 + 1.0),
                },
            );
            let q = AggQuery::new(&rels, batch);
            assert_all_agree(db, &q, &format!("{tag} node {i} t={t}"));
        }
    };
    run_walk(&db, "pre-mutation");
    // Mutate a dimension mid-training: every later batch must see it.
    let row = db.get("Item").unwrap().row_vec(0);
    db.get_mut("Item").unwrap().push_row(&row).unwrap();
    run_walk(&db, "post-mutation");
}

/// Dish (Figure 7/9 example): repeated filtered batches with revisited
/// thresholds, then a mutation, across all engines.
#[test]
fn dish_filter_revisits_cached_vs_cold() {
    let mut db = fdb::datasets::dish::dish_database();
    let rels = ["Orders", "Dish", "Items"];
    let run_round = |db: &Database, tag: &str| {
        for t in [1.0, 3.0, 1.0, 2.0] {
            let mut batch = AggBatch::new();
            batch.push(Aggregate::count());
            batch.push(Aggregate::sum("price").filtered("price", FilterOp::Ge(t)));
            batch.push(Aggregate::count().by(&["customer"]).filtered("day", FilterOp::Eq(1)));
            let q = AggQuery::new(&rels, batch);
            assert_all_agree(db, &q, &format!("{tag} t={t}"));
        }
    };
    run_round(&db, "cold+warm");
    let row = db.get("Items").unwrap().row_vec(0);
    db.get_mut("Items").unwrap().push_row(&row).unwrap();
    run_round(&db, "mutated");
}
