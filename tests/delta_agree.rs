//! Delta correctness across the unified maintenance layer: for every
//! engine (including the sharded and dispatch compositions and F-IVM),
//! `MaintainableEngine::apply_delta` over arbitrary insert/delete
//! sequences must agree with a **cold** `Engine::run` over the
//! equivalently mutated database — on the dish example, on the retailer
//! dataset, and on randomized snowflakes.
//!
//! The acceptance-shaped test at the bottom pins the incremental path
//! itself: a single-row fact insert after `prepare` is served by delta
//! propagation — the view cache's `delta_maintained` counter moves and
//! no view below (or beside) the owner→root path is rescanned.

use fdb::data::{AttrType, Database, Delta, Relation, Schema, Value};
use fdb::ivm::FivmEngine;
use fdb::lmfao::covariance_batch;
use fdb::prelude::*;
use proptest::prelude::*;

mod common;

/// The maintainable-engine panel: every backend plus the wrappers. The
/// sharded wrapper shards for real (`min_rows_per_shard(1)`) and also
/// composes over dispatch.
fn panel() -> Vec<(String, Box<dyn MaintainableEngine>)> {
    let seq = EngineConfig { threads: 1, ..Default::default() };
    vec![
        ("flat".into(), Box::new(FlatEngine)),
        ("factorized".into(), Box::new(FactorizedEngine::new())),
        ("lmfao".into(), Box::new(LmfaoEngine::with_config(seq))),
        (
            "lmfao-hash".into(),
            Box::new(LmfaoEngine::with_config(EngineConfig { dense_limit: 0, ..seq })),
        ),
        (
            "lmfao-recompute".into(),
            Box::new(LmfaoEngine::with_config(EngineConfig { delta_maintain: false, ..seq })),
        ),
        ("dispatch".into(), Box::new(DispatchEngine::new())),
        (
            "sharded-lmfao".into(),
            Box::new(
                ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 3)
                    .with_min_rows_per_shard(1),
            ),
        ),
        (
            "sharded-dispatch".into(),
            Box::new(
                ShardedEngine::with_shards(DispatchEngine::new(), 2).with_min_rows_per_shard(1),
            ),
        ),
    ]
}

/// Prepares every panel engine on `db`, applies `deltas` one at a time,
/// and checks each engine's maintained result against a cold flat-engine
/// run over the equivalently mutated shadow database after every step.
fn check_stream(db: &Database, q: &AggQuery, deltas: &[Delta]) {
    let mut states: Vec<(String, Box<dyn MaintainableEngine>, MaintState)> = panel()
        .into_iter()
        .map(|(name, e)| {
            let st = e.prepare(db, q).unwrap_or_else(|err| panic!("{name}: prepare: {err}"));
            (name, e, st)
        })
        .collect();
    let mut shadow = db.clone();
    for (step, d) in deltas.iter().enumerate() {
        shadow.apply_delta(d).unwrap_or_else(|err| panic!("shadow delta {step}: {err}"));
        let cold = FlatEngine.run(&shadow, q).expect("cold run");
        for (name, e, st) in states.iter_mut() {
            let got =
                e.apply_delta(st, d).unwrap_or_else(|err| panic!("{name}: delta {step}: {err}"));
            common::assert_results_match(
                &cold,
                &got,
                &format!("{name} delta {step}"),
                q.batch.len(),
                1e-6,
            );
        }
    }
}

#[test]
fn dish_stream_agrees_across_all_engines() {
    let db = fdb::datasets::dish::dish_database();
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("price"));
    batch.push(Aggregate::count().by(&["customer"]));
    batch.push(Aggregate::sum("price").by(&["day", "customer"]));
    batch.push(Aggregate::sum("price").filtered("price", FilterOp::Ge(3.0)));
    let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
    // Orders(customer, day, dish); Dish(dish, item); Items(item, price).
    let dish_row = |d: i64, i: i64| vec![Value::Int(d), Value::Int(i)];
    let order_row = db.get("Orders").unwrap().row_vec(0);
    let deltas = vec![
        Delta::insert("Orders", order_row.clone()),
        Delta::delete("Orders", order_row),
        // burger+sausage: a new dish composition within the code ranges.
        Delta::insert("Dish", dish_row(0, 3)),
        Delta::new("Dish").with_insert(dish_row(1, 0)).with_delete(dish_row(0, 3)),
        Delta::insert("Items", db.get("Items").unwrap().row_vec(1)),
    ];
    check_stream(&db, &q, &deltas);
}

#[test]
fn retailer_stream_agrees_across_all_engines() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    let q = AggQuery::new(
        &rels,
        covariance_batch(&["prize", "maxtemp", "inventoryunits"], &["rain", "category"]),
    );
    let fact = ds.db.get("Inventory").unwrap();
    let item = ds.db.get("Item").unwrap();
    let deltas = vec![
        // Fact inserts (duplicated existing rows stay within every range).
        Delta::insert("Inventory", fact.row_vec(0)),
        Delta::new("Inventory")
            .with_insert(fact.row_vec(1))
            .with_insert(fact.row_vec(2))
            .with_delete(fact.row_vec(0)),
        // Dimension churn: delete + reinsert an Item row.
        Delta::delete("Item", item.row_vec(0)),
        Delta::insert("Item", item.row_vec(0)),
    ];
    check_stream(&ds.db, &q, &deltas);
}

#[test]
fn fivm_maintains_covariance_batches_under_deltas() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    let q = AggQuery::new(&rels, covariance_batch(&["prize", "inventoryunits"], &[]));
    let mut st = FivmEngine.prepare(&ds.db, &q).unwrap();
    let mut shadow = ds.db.clone();
    let fact = ds.db.get("Inventory").unwrap();
    let deltas = [
        Delta::insert("Inventory", fact.row_vec(0)),
        Delta::delete("Inventory", fact.row_vec(1)),
        Delta::insert("Weather", ds.db.get("Weather").unwrap().row_vec(0)),
    ];
    for (step, d) in deltas.iter().enumerate() {
        let got = FivmEngine.apply_delta(&mut st, d).unwrap();
        shadow.apply_delta(d).unwrap();
        let cold = FlatEngine.run(&shadow, &q).unwrap();
        for i in 0..q.batch.len() {
            let (a, b) = (got.scalar(i), cold.scalar(i));
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "fivm delta {step} agg {i}: {a} vs {b}"
            );
        }
    }
}

/// A random 3-relation snowflake (same shape as `tests/engines_agree.rs`)
/// built from the generator's row lists.
fn snowflake(rows: &[(i64, i64, i8)], d1: &[(i64, i8)], d2: &[(i64, i8)]) -> Database {
    let mut db = Database::new();
    let mut f = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("c", AttrType::Categorical),
        ("x", AttrType::Double),
    ]));
    for &(a, b, x) in rows {
        let c = (a + 2 * b) % 3;
        f.push_row(&[Value::Int(a), Value::Int(b), Value::Int(c), Value::F64(x as f64)]).unwrap();
    }
    let mut r1 = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("w", AttrType::Categorical),
        ("u", AttrType::Double),
    ]));
    for &(a, u) in d1 {
        r1.push_row(&[Value::Int(a), Value::Int(a % 2), Value::F64(u as f64)]).unwrap();
    }
    let mut r2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
    for &(b, v) in d2 {
        r2.push_row(&[Value::Int(b), Value::F64(v as f64)]).unwrap();
    }
    db.add("F", f);
    db.add("D1", r1);
    db.add("D2", r2);
    db
}

/// Turns the op stream into valid deltas against a running shadow:
/// `(rel, del, a, b, x)` — inserts build a row from the values; deletes
/// remove the row at index `a` (mod len) of the chosen relation.
fn ops_to_deltas(db: &Database, ops: &[(u8, u8, i64, i64, i8)]) -> Vec<Delta> {
    let names = ["F", "D1", "D2"];
    let mut shadow = db.clone();
    let mut deltas = Vec::new();
    for &(rel, del, a, b, x) in ops {
        let name = names[rel as usize % 3];
        let d = if del == 1 {
            let r = shadow.get(name).unwrap();
            if r.is_empty() {
                continue;
            }
            let row = r.row_vec((a.unsigned_abs() as usize) % r.len());
            Delta::delete(name, row)
        } else {
            let row = match rel % 3 {
                0 => vec![
                    Value::Int(a),
                    Value::Int(b),
                    Value::Int((a + 2 * b) % 3),
                    Value::F64(x as f64),
                ],
                1 => vec![Value::Int(a), Value::Int(a % 2), Value::F64(x as f64)],
                _ => vec![Value::Int(b), Value::F64(x as f64)],
            };
            Delta::insert(name, row)
        };
        shadow.apply_delta(&d).unwrap();
        deltas.push(d);
    }
    deltas
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random insert/delete sequences over random snowflakes: every
    /// engine's maintained results track cold recomputation exactly.
    /// Inserts draw from a wider value range (0..6) than the seed data
    /// (0..4), so streams routinely leave the prepare-time dense ranges
    /// and exercise the rebuild fallback alongside the in-place path.
    #[test]
    fn random_delta_streams_agree(
        rows in proptest::collection::vec((0i64..4, 0i64..4, -5i8..5), 1..12),
        d1 in proptest::collection::vec((0i64..4, -5i8..5), 1..6),
        d2 in proptest::collection::vec((0i64..4, -5i8..5), 1..6),
        ops in proptest::collection::vec(
            (0u8..3, 0u8..2, 0i64..6, 0i64..6, -5i8..5), 1..14),
    ) {
        let db = snowflake(&rows, &d1, &d2);
        let mut batch = AggBatch::new();
        batch.push(Aggregate::count());
        batch.push(Aggregate::sum("x"));
        batch.push(Aggregate::sum_prod("x", "u"));
        batch.push(Aggregate::count().by(&["c"]));
        batch.push(Aggregate::sum("x").by(&["c", "w"]));
        batch.push(Aggregate::sum("v").filtered("u", FilterOp::Ge(0.0)));
        let q = AggQuery::new(&["F", "D1", "D2"], batch);
        let deltas = ops_to_deltas(&db, &ops);
        check_stream(&db, &q, &deltas);
    }
}

/// The acceptance criterion: on the retailer schema, a single-row fact
/// insert after `prepare` is served by delta propagation — the view
/// cache's `delta_maintained` counter moves, and zero full-view rescans
/// happen below (or beside) the owner→root path. The owner *is* the
/// root here, so nothing at all may rescan.
#[test]
fn retailer_fact_insert_is_served_by_delta_propagation() {
    // Fresh dataset instance → fresh relation content ids, so per-id
    // attributions are exact even with concurrent cache users.
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    let q = AggQuery::new(
        &rels,
        covariance_batch(&["prize", "maxtemp", "inventoryunits"], &["rain", "category"]),
    );
    let cache = fdb::lmfao::ViewCache::global();
    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let mut st = engine.prepare(&ds.db, &q).unwrap();
    // Rescans attributed to any of this dataset's relations (dimension
    // content ids never change below; the fact's id at prepare time also
    // must not attract new scans).
    let ids: Vec<u64> = rels.iter().map(|r| ds.db.get(r).unwrap().data_id()).collect();
    let rescans = |ids: &[u64]| -> u64 { ids.iter().map(|&i| cache.stats_for_id(i).1).sum() };
    let before_rescans = rescans(&ids);
    let before_maintained = cache.stats().delta_maintained;
    let delta = Delta::insert("Inventory", ds.db.get("Inventory").unwrap().row_vec(0));
    let got = engine.apply_delta(&mut st, &delta).unwrap();
    assert!(
        cache.stats().delta_maintained > before_maintained,
        "the fact insert must be folded into maintained views"
    );
    assert_eq!(rescans(&ids), before_rescans, "zero full-view rescans below the owner→root path");
    // And the result is exactly the cold recomputation.
    let mut shadow = ds.db.clone();
    shadow.apply_delta(&delta).unwrap();
    let cold = FlatEngine.run(&shadow, &q).unwrap();
    common::assert_results_match(&cold, &got, "fact insert", q.batch.len(), 1e-9);
}
