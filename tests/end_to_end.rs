//! End-to-end integration: the structure-aware model equals the
//! structure-agnostic model trained on the materialized matrix, and the
//! full Figure 3 harness holds its headline relations at test scale.

use fdb::datasets::{retailer, RetailerConfig};
use fdb::lmfao::{sufficient_stats, LmfaoEngine};
use fdb::ml::linreg::{LinearRegression, RidgeConfig};
use fdb::ml::DataMatrix;
use fdb::query::natural_join_all;

#[test]
fn structure_aware_model_predicts_like_matrix_model() {
    let ds = retailer(RetailerConfig::tiny());
    let rels: Vec<&str> = ds.relation_refs();
    let cont: Vec<&str> = ds.features.continuous_with_response_refs();
    let cat: Vec<&str> = ds.features.categorical.iter().map(String::as_str).collect();
    let stats = sufficient_stats(&ds.db, &rels, &cont, &cat, &LmfaoEngine::default()).unwrap();
    let model = LinearRegression::fit_closed(&stats, &RidgeConfig::default()).unwrap();

    // The same model trained on the materialized one-hot matrix has the
    // same labels; predictions must coincide row by row.
    let flat = natural_join_all(&ds.db, &rels).unwrap();
    let feats: Vec<&str> = ds.features.continuous.iter().map(String::as_str).collect();
    let m = DataMatrix::from_relation(&flat, &feats, &cat, &ds.features.response).unwrap();
    assert_eq!(model.labels, m.labels);
    let rmse = m.rmse(&model.weights, model.intercept);
    // The planted retailer signal is mostly linear: decent fit expected.
    let mean = m.y.iter().sum::<f64>() / m.rows() as f64;
    let base = (m.y.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / m.rows() as f64).sqrt();
    assert!(rmse < 0.7 * base, "rmse {rmse} vs constant-mean {base}");
}

#[test]
fn fig3_harness_invariants() {
    let ds = retailer(RetailerConfig::tiny());
    let table = fdb_bench::fig3::dataset_table(&ds);
    // Key-fkey join: as many rows as the fact table, wider than any input.
    let join = table.last().unwrap();
    assert_eq!(join.name, "Join");
    assert_eq!(join.rows, ds.db.get("Inventory").unwrap().len());
    let widest_input = table[..table.len() - 1].iter().map(|r| r.attrs).max().unwrap();
    assert!(join.attrs > widest_input);
    let r = fdb_bench::fig3::end_to_end(&ds, 2);
    assert!(r.stats_bytes < r.matrix_bytes / 10);
    assert!(r.lmfao_rmse.is_finite() && r.sgd_rmse.is_finite());
}
