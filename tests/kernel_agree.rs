//! Vectorized kernels agree with their scalar twins.
//!
//! The batched columnar paths (`fdb_core::kernel`, the batched leaf scan,
//! the trie pair collectors) must be drop-in equivalent to the row-at-a-time
//! loops they replace: same represented key sets, same values up to float
//! summation order. These tests pin that equivalence on random inputs,
//! including the awkward shapes — empty batches, single-row morsels, the
//! dense→hash fallback boundary at `dense_limit`, and mixed-radix codes
//! near `u64` overflow.

use fdb::lmfao::{covariance_batch, kernel, KeySpace};
use fdb::prelude::*;
use proptest::prelude::*;

mod common;

/// A random 3-relation snowflake: F(a, b, c, x) ⋈ D1(a, w, u) ⋈ D2(b, v).
fn snowflake(rows: &[(i64, i64, i8)], d1: &[(i64, i8)], d2: &[(i64, i8)]) -> Database {
    let mut db = Database::new();
    let mut f = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("c", AttrType::Categorical),
        ("x", AttrType::Double),
    ]));
    for &(a, b, x) in rows {
        let c = (a + 2 * b) % 3;
        f.push_row(&[Value::Int(a), Value::Int(b), Value::Int(c), Value::F64(x as f64)]).unwrap();
    }
    let mut r1 = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("w", AttrType::Categorical),
        ("u", AttrType::Double),
    ]));
    for &(a, u) in d1 {
        r1.push_row(&[Value::Int(a), Value::Int(a % 2), Value::F64(u as f64)]).unwrap();
    }
    let mut r2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
    for &(b, v) in d2 {
        r2.push_row(&[Value::Int(b), Value::F64(v as f64)]).unwrap();
    }
    db.add("F", f);
    db.add("D1", r1);
    db.add("D2", r2);
    db
}

/// The query family the batched leaf path sees: grouped covariance with a
/// filtered extra, over both categorical group keys.
fn cov_query() -> AggQuery {
    let mut batch = covariance_batch(&["x", "u", "v"], &["c", "w"]);
    batch.push(Aggregate::sum("x").by(&["c"]).filtered("u", FilterOp::Ge(0.0)));
    batch.push(Aggregate::count().filtered("x", FilterOp::Lt(1.0)));
    AggQuery::new(&["F", "D1", "D2"], batch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LMFAO with the batched leaf scan ≡ the row-wise path, and the
    /// factorized engine with the batched intersection collectors ≡ the
    /// generic leapfrog — on random snowflakes including empty facts.
    #[test]
    fn vectorized_engines_agree_with_rowwise(
        rows in proptest::collection::vec((0i64..4, 0i64..4, -5i8..5), 0..25),
        d1 in proptest::collection::vec((0i64..4, -5i8..5), 0..8),
        d2 in proptest::collection::vec((0i64..4, -5i8..5), 0..8),
    ) {
        let db = snowflake(&rows, &d1, &d2);
        let q = cov_query();
        let naggs = q.batch.len();
        let vec_cfg = EngineConfig { threads: 1, view_cache_bytes: 0, ..Default::default() };
        let row_cfg = EngineConfig { vectorize: false, ..vec_cfg };
        let base = LmfaoEngine::with_config(row_cfg).run(&db, &q).unwrap();
        let got = LmfaoEngine::with_config(vec_cfg).run(&db, &q).unwrap();
        common::assert_results_match(&base, &got, "lmfao vectorized", naggs, 1e-9);

        let fac_row = FactorizedEngine { vectorize: false, ..FactorizedEngine::new() };
        let fb = fac_row.run(&db, &q).unwrap();
        let fg = FactorizedEngine::new().run(&db, &q).unwrap();
        common::assert_results_match(&fb, &fg, "factorized vectorized", naggs, 1e-9);

        // Flat's batched dense accumulation against the row-wise engines.
        let flat = FlatEngine.run(&db, &q).unwrap();
        common::assert_results_match(&base, &flat, "flat batched", naggs, 1e-9);
    }

    /// Sweeping `dense_limit` across the group key-space size (6 codes for
    /// `c × w` here) must not change results: below the boundary the hash
    /// accumulator runs row-wise, above it the dense accumulator takes the
    /// batched code path.
    #[test]
    fn dense_hash_fallback_boundary_agrees(
        rows in proptest::collection::vec((0i64..4, 0i64..4, -5i8..5), 1..25),
        d1 in proptest::collection::vec((0i64..4, -5i8..5), 1..8),
        d2 in proptest::collection::vec((0i64..4, -5i8..5), 1..8),
    ) {
        let db = snowflake(&rows, &d1, &d2);
        let q = cov_query();
        let seq = EngineConfig { threads: 1, view_cache_bytes: 0, ..Default::default() };
        let base = LmfaoEngine::with_config(seq).run(&db, &q).unwrap();
        for dense_limit in [0, 1, 5, 6, 7, u64::MAX] {
            let got = LmfaoEngine::with_config(EngineConfig { dense_limit, ..seq })
                .run(&db, &q)
                .unwrap();
            common::assert_results_match(
                &base,
                &got,
                &format!("dense_limit {dense_limit}"),
                q.batch.len(),
                1e-9,
            );
        }
    }

    /// The batched mixed-radix encoder matches the per-row encoder on
    /// random spaces and keys — in range, out of range, and near the top
    /// of the `u64` code space.
    #[test]
    fn batched_encode_matches_scalar_on_random_spaces(
        spec in proptest::collection::vec((-40i64..40, 0i64..6), 1..4),
        keys in proptest::collection::vec(-50i64..50, 0..40),
        big in proptest::collection::vec(0i64..2, 1..3),
    ) {
        let ranges: Vec<(i64, i64)> = spec.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        if let Some(space) = KeySpace::new(&ranges, u64::MAX) {
            let arity = ranges.len();
            let rows = keys.len() / arity.max(1);
            let cols: Vec<&[i64]> =
                (0..arity).map(|i| &keys[i * rows..(i + 1) * rows]).collect();
            let (mut fast, mut slow, mut oob) = (Vec::new(), Vec::new(), Vec::new());
            kernel::encode_codes(&space, &cols, rows, &mut fast, &mut oob);
            kernel::encode_codes_scalar(&space, &cols, rows, &mut slow);
            prop_assert_eq!(fast, slow);
        }
        // Near-overflow: radices chosen so strides reach the top u64 bits.
        let wide: Vec<(i64, i64)> = big
            .iter()
            .map(|&b| if b == 0 { (0, (1 << 31) - 1) } else { (-(1 << 30), (1 << 30)) })
            .collect();
        if let Some(space) = KeySpace::new(&wide, u64::MAX) {
            let cols: Vec<Vec<i64>> = wide
                .iter()
                .map(|&(lo, hi)| vec![lo, hi, lo - 1, hi + 1, 0, i64::MAX, i64::MIN])
                .collect();
            let refs: Vec<&[i64]> = cols.iter().map(|c| c.as_slice()).collect();
            let (mut fast, mut slow, mut oob) = (Vec::new(), Vec::new(), Vec::new());
            kernel::encode_codes(&space, &refs, 7, &mut fast, &mut oob);
            kernel::encode_codes_scalar(&space, &refs, 7, &mut slow);
            prop_assert_eq!(fast, slow);
        }
    }
}

/// Single-row morsels (`morsel_rows = 1`) are the degenerate scheduling
/// shape: every row its own work unit. Results must match the sequential
/// run (chunk merges only reorder float sums).
#[test]
fn single_row_morsels_agree_with_sequential() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    let q = AggQuery::new(&rels, covariance_batch(&["prize", "inventoryunits"], &["rain"]));
    let seq = EngineConfig { threads: 1, view_cache_bytes: 0, ..Default::default() };
    let base = LmfaoEngine::with_config(seq).run(&ds.db, &q).unwrap();
    for (threads, morsel_rows) in [(3, 1), (2, 7), (4, 4096)] {
        let cfg = EngineConfig { threads, morsel_rows, ..seq };
        let got = LmfaoEngine::with_config(cfg).run(&ds.db, &q).unwrap();
        common::assert_results_match(
            &base,
            &got,
            &format!("threads {threads} morsel_rows {morsel_rows}"),
            q.batch.len(),
            1e-6,
        );
    }
}

/// An empty fact joined through the batched paths: no groups, no panics,
/// identical (empty) results across all engines and both vectorize arms.
#[test]
fn empty_fact_agrees_everywhere() {
    let db = snowflake(&[], &[(0, 1), (1, -2)], &[(0, 3)]);
    let q = cov_query();
    let base = FlatEngine.run(&db, &q).unwrap();
    let seq = EngineConfig { threads: 1, view_cache_bytes: 0, ..Default::default() };
    for vectorize in [true, false] {
        let lm = LmfaoEngine::with_config(EngineConfig { vectorize, ..seq });
        common::assert_results_match(
            &base,
            &lm.run(&db, &q).unwrap(),
            "empty lmfao",
            q.batch.len(),
            1e-9,
        );
        let fac = FactorizedEngine { vectorize, ..FactorizedEngine::new() };
        common::assert_results_match(
            &base,
            &fac.run(&db, &q).unwrap(),
            "empty factorized",
            q.batch.len(),
            1e-9,
        );
    }
    assert_eq!(base.scalar(q.batch.len() - 1), 0.0, "count over empty join");
}
