//! Cache-invalidation races under concurrent serving: one writer thread
//! refreshes `data_id`s via deltas (including failing deltas, whose
//! rollback re-issues pre-delta ids and invalidates post-delta cache
//! entries) while N reader threads hammer the global `SortCache` and —
//! through engine runs — the global `ViewCache`.
//!
//! The invariant: **no stale hit ever crosses an epoch boundary.** A
//! reader pinned at epoch *e* must get sorted views and query results
//! computed from exactly the relations of *e*, no matter how many epochs
//! the writer publishes (or rolls back) meanwhile. Both caches key on
//! `data_id` nonces, so this is the discipline the striped rewrite must
//! not have broken.
//!
//! The `--features fault-injection` variant replays the same race with
//! the PR 7 `cache-admit`/`cache-evict` sites firing probabilistically —
//! admissions refused at random, eviction pressure injected mid-insert —
//! and demands the same exactness: the caches are transparent, so chaos
//! in them may cost rescans but never correctness.

use fdb::data::{AttrType, Database, Delta, Relation, Schema, SortCache, Value};
use fdb::lmfao::serve::ServingEngine;
use fdb::prelude::*;

/// R(k, g, x): `k` unique per row, `g` a small categorical, integer `x`
/// values so every aggregate is exact in f64.
fn db(n: i64) -> Database {
    let mut db = Database::new();
    let mut r = Relation::new(Schema::of(&[
        ("k", AttrType::Int),
        ("g", AttrType::Categorical),
        ("x", AttrType::Double),
    ]));
    for k in 0..n {
        r.push_row(&[Value::Int(k), Value::Int(k % 4), Value::F64((k % 7) as f64)]).unwrap();
    }
    db.add("R", r);
    db
}

fn query() -> AggQuery {
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::count().by(&["g"]));
    batch.push(Aggregate::sum("x"));
    AggQuery::new(&["R"], batch)
}

/// The race: `readers` threads pin snapshots and check both caches
/// against them while the writer streams `rounds` deltas — one fresh row
/// per committed epoch, with every 5th delta an invalid one that must
/// roll back (exercising `invalidate_id` concurrently with reader hits).
fn run_race(readers: usize, rounds: i64) {
    let n0 = 64i64;
    let serving = ServingEngine::new(
        LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() }),
        &db(n0),
        &query(),
    )
    .unwrap();
    let e0 = serving.epoch();
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let (serving, done) = (&serving, &done);
        for _ in 0..readers {
            s.spawn(move || {
                let mut checks = 0usize;
                while !done.load(std::sync::atomic::Ordering::Acquire) || checks < 5 {
                    // Pin an epoch; everything below must reflect it alone.
                    let snap = serving.snapshot();
                    let rel = snap.database().get("R").unwrap();
                    let rows = rel.len();
                    // SortCache: a stale cross-epoch hit would surface as
                    // a sorted view of the wrong length or content sum.
                    let sorted = SortCache::global().sorted_by(rel, &[0]);
                    assert_eq!(sorted.len(), rows, "sorted view is of the pinned epoch");
                    assert!(sorted.int_col(0).windows(2).all(|w| w[0] <= w[1]));
                    assert_eq!(
                        sorted.int_col(0).iter().sum::<i64>(),
                        rel.int_col(0).iter().sum::<i64>(),
                        "sorted view holds exactly the pinned rows"
                    );
                    // ViewCache (through the engine): each committed epoch
                    // appends exactly one row, so the count at the pinned
                    // epoch is n0 + (epoch - e0) — a stale view hit under
                    // a newer or rolled-back id breaks this exactly.
                    let epoch = snap.epoch();
                    let got = serving.query_at(&snap).unwrap();
                    assert_eq!(
                        got.scalar(0),
                        (n0 + (epoch - e0) as i64) as f64,
                        "query result is of the pinned epoch {epoch}"
                    );
                    let by_g: f64 = (0..4)
                        .map(|g| got.grouped(1).get([g].as_slice()).copied().unwrap_or(0.0))
                        .sum();
                    assert_eq!(by_g, got.scalar(0), "grouped counts partition the pinned rows");
                    checks += 1;
                }
            });
        }
        s.spawn(move || {
            for i in 0..rounds {
                if i % 5 == 4 {
                    // An invalid delta: must roll back, invalidate, and
                    // leave the published epoch untouched.
                    let bad =
                        Delta::delete("R", vec![Value::Int(-1), Value::Int(0), Value::F64(0.0)]);
                    assert!(serving.apply_delta(&bad).is_err());
                } else {
                    let k = n0 + i;
                    serving
                        .apply_delta(&Delta::insert(
                            "R",
                            vec![Value::Int(k), Value::Int(k % 4), Value::F64((k % 7) as f64)],
                        ))
                        .unwrap();
                }
                std::thread::yield_now();
            }
            done.store(true, std::sync::atomic::Ordering::Release);
        });
    });
    let committed = rounds - rounds / 5;
    assert_eq!(serving.epoch(), e0 + committed as u64, "only committed deltas published");
    assert_eq!(serving.query().unwrap().1.scalar(0), (n0 + committed) as f64);
}

#[test]
fn no_stale_cache_hit_crosses_an_epoch_boundary() {
    run_race(4, 40);
}

#[cfg(feature = "fault-injection")]
mod chaos {
    use super::*;
    use fdb::data::fault::{self, FaultPlan};

    /// The same race under injected cache chaos: admissions refused and
    /// evictions forced at random in both global caches' admit paths.
    /// Correctness must be untouched — a cache that loses entries only
    /// costs rescans.
    #[test]
    fn cache_chaos_never_leaks_across_epochs() {
        fault::install(
            FaultPlan::new(0xCAFE)
                .fail_with_probability("cache-admit", 0.5)
                .fail_with_probability("cache-evict", 0.5),
        );
        let out = std::panic::catch_unwind(|| run_race(4, 25));
        let admits = fault::hit_count("cache-admit");
        let evicts = fault::hit_count("cache-evict");
        fault::clear();
        out.unwrap();
        assert!(admits + evicts > 0, "the chaos sites must actually have fired");
    }
}
