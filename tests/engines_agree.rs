//! Cross-engine agreement: the LMFAO view engine, the factorized ring
//! evaluator, the classical engine over the materialized join, and the
//! IVM maintainers must all compute the same statistics — on randomized
//! databases (property-based, spanning five crates).

use fdb::data::{AttrType, Database, Relation, Schema, Value};
use fdb::ivm::{Fivm, StreamDb, TreeShape, Update};
use fdb::lmfao::{covariance_batch, run_batch, EngineConfig};
use fdb::query::natural_join_all;
use proptest::prelude::*;
use std::sync::Arc;

/// A random 3-relation snowflake: F(a, b, x) ⋈ D1(a, u) ⋈ D2(b, v).
fn snowflake(rows: &[(i64, i64, i8)], d1: &[(i64, i8)], d2: &[(i64, i8)]) -> Database {
    let mut db = Database::new();
    let mut f = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("x", AttrType::Double),
    ]));
    for &(a, b, x) in rows {
        f.push_row(&[Value::Int(a), Value::Int(b), Value::F64(x as f64)]).unwrap();
    }
    let mut r1 = Relation::new(Schema::of(&[("a", AttrType::Int), ("u", AttrType::Double)]));
    for &(a, u) in d1 {
        r1.push_row(&[Value::Int(a), Value::F64(u as f64)]).unwrap();
    }
    let mut r2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
    for &(b, v) in d2 {
        r2.push_row(&[Value::Int(b), Value::F64(v as f64)]).unwrap();
    }
    db.add("F", f);
    db.add("D1", r1);
    db.add("D2", r2);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lmfao_equals_classical_equals_fivm(
        rows in proptest::collection::vec((0i64..4, 0i64..4, -5i8..5), 0..25),
        d1 in proptest::collection::vec((0i64..4, -5i8..5), 0..8),
        d2 in proptest::collection::vec((0i64..4, -5i8..5), 0..8),
    ) {
        let db = snowflake(&rows, &d1, &d2);
        let rels = ["F", "D1", "D2"];
        let cont = ["x", "u", "v"];

        // 1. LMFAO batch.
        let batch = covariance_batch(&cont, &[]);
        let res = run_batch(&db, &rels, &batch, &EngineConfig::default()).unwrap();
        let lmfao_count = res.scalar(0);

        // 2. Classical: materialized join.
        let flat = natural_join_all(&db, &rels).unwrap();
        prop_assert!((lmfao_count - flat.len() as f64).abs() < 1e-9,
            "count: lmfao {} vs flat {}", lmfao_count, flat.len());

        // 3. F-IVM: stream every tuple, compare the final triple.
        let schemas: Vec<Schema> =
            rels.iter().map(|n| db.get(n).unwrap().schema().clone()).collect();
        let shape = Arc::new(TreeShape::build(schemas.clone(), &rels, 0).unwrap());
        let mut sdb = StreamDb::new(schemas);
        shape.register_indices(&mut sdb);
        let mut fivm = Fivm::new(Arc::clone(&shape), &cont).unwrap();
        for (ri, name) in rels.iter().enumerate() {
            let rel = db.get(name).unwrap();
            for r in 0..rel.len() {
                let up = Update::insert(ri, rel.row_vec(r));
                sdb.apply(&up).unwrap();
                fivm.apply(&sdb, &up);
            }
        }
        let triple = fivm.result();
        prop_assert!((triple.c - lmfao_count).abs() < 1e-6);
        // SUM(x) (batch index 1) and SUM(x·u) must agree too.
        let sum_x = res.scalar(1);
        prop_assert!((triple.s[0] - sum_x).abs() < 1e-6,
            "SUM(x): fivm {} vs lmfao {}", triple.s[0], sum_x);
        // x is cont[0], u is cont[1]: SUM(x*u) = aggregate "x*u".
        let idx_xu = batch.aggs.iter().position(|a| {
            a.factors.len() == 2
                && a.factors[0].0 == "x"
                && a.factors[1].0 == "u"
        }).expect("x*u aggregate exists");
        prop_assert!((triple.q_at(0, 1) - res.scalar(idx_xu)).abs() < 1e-6);
    }
}
