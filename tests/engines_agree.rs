//! Cross-backend agreement through the unified `Engine` trait.
//!
//! The same `AggQuery` values are pushed through the flat (materialized
//! join), factorized (fused leapfrog), and LMFAO (shared views) backends —
//! on the paper's dish example, on the retailer dataset, and on randomized
//! snowflake databases — and must produce identical groups and (up to
//! float round-off) identical values. The F-IVM backend joins the panel on
//! its covariance-shaped fragment, streamed tuple-by-tuple.

use fdb::data::{AttrType, Database, Relation, Schema, Value};
use fdb::ivm::FivmEngine;
use fdb::lmfao::{covariance_batch, decision_node_batch};
use fdb::prelude::*;
use proptest::prelude::*;

mod common;

/// Cross-backend agreement (groups, represented key sets, values): the
/// looser tolerance absorbs genuinely different evaluation orders across
/// backends (materialized scan vs leapfrog vs shared views).
fn assert_results_match(base: &BatchResult, got: &BatchResult, tag: &str, naggs: usize) {
    common::assert_results_match(base, got, tag, naggs, 1e-6);
}

/// Runs `q` through every engine and checks the results coincide.
fn assert_engines_agree(db: &Database, q: &AggQuery) -> BatchResult {
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(FlatEngine),
        Box::new(FactorizedEngine::new()),
        Box::new(FactorizedEngine::baseline_hash()),
        Box::new(LmfaoEngine::new()),
        Box::new(LmfaoEngine::with_config(EngineConfig::sequential())),
        Box::new(LmfaoEngine::with_config(EngineConfig {
            specialize: false,
            share: false,
            threads: 1,
            ..Default::default()
        })),
        // The dense-disabled hash baseline must agree bit-for-bit.
        Box::new(LmfaoEngine::with_config(EngineConfig { dense_limit: 0, ..Default::default() })),
    ];
    let results: Vec<BatchResult> = engines
        .iter()
        .map(|e| e.run(db, q).unwrap_or_else(|err| panic!("{}: {err}", e.name())))
        .collect();
    let base = &results[0];
    for (e, r) in engines.iter().zip(&results).skip(1) {
        assert_results_match(base, r, e.name(), q.batch.len());
    }
    results.into_iter().next().expect("non-empty")
}

#[test]
fn all_backends_agree_on_dish() {
    let db = fdb::datasets::dish::dish_database();
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("price"));
    batch.push(Aggregate::sum_prod("price", "price"));
    batch.push(Aggregate::count().by(&["customer"]));
    batch.push(Aggregate::count().by(&["day"]));
    batch.push(Aggregate::sum("price").by(&["customer", "day"]));
    batch.push(Aggregate::sum("price").filtered("price", FilterOp::Ge(3.0)));
    batch.push(Aggregate::count().by(&["customer"]).filtered("day", FilterOp::Eq(1)));
    batch.push(Aggregate::sum("price").filtered("price", FilterOp::Lt(100.0)));
    let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
    let res = assert_engines_agree(&db, &q);
    // Figure 9 ground truth: the dish join has 12 tuples.
    assert_eq!(res.scalar(0), 12.0);
    // Elise ordered twice (burger = 3 items each): 6 join tuples.
    let elise: Box<[i64]> = vec![fdb::datasets::dish::codes::ELISE].into();
    assert_eq!(res.grouped(3)[&elise], 6.0);
}

#[test]
fn all_backends_agree_on_retailer() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    // The covariance batch (Figure 5 workload) with grouped interactions.
    let cov = covariance_batch(&["prize", "maxtemp", "inventoryunits"], &["rain", "category"]);
    let res = assert_engines_agree(&ds.db, &AggQuery::new(&rels, cov));
    assert!(res.scalar(0) > 0.0, "tiny retailer join is non-empty");

    // A decision-tree node batch: conjunctive filters across relations.
    let node =
        decision_node_batch(&["prize", "maxtemp"], &["rain"], "inventoryunits", 2, 2, |attr, j| {
            match attr {
                "prize" => 5.0 + 10.0 * j as f64,
                _ => 5.0 * j as f64,
            }
        });
    assert_engines_agree(&ds.db, &AggQuery::new(&rels, node));
}

#[test]
fn fivm_streams_to_the_same_covariance_stats() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    let q = AggQuery::new(&rels, covariance_batch(&["prize", "inventoryunits"], &[]));
    let streamed = FivmEngine.run(&ds.db, &q).unwrap();
    let batched = LmfaoEngine::new().run(&ds.db, &q).unwrap();
    for i in 0..q.batch.len() {
        let (a, b) = (streamed.scalar(i), batched.scalar(i));
        assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "agg {i}: fivm {a} vs lmfao {b}");
    }
}

/// A random 3-relation snowflake: F(a, b, c, x) ⋈ D1(a, w, u) ⋈ D2(b, v),
/// with categorical codes `c` (fact) and `w` (dimension) for group-bys.
fn snowflake(rows: &[(i64, i64, i8)], d1: &[(i64, i8)], d2: &[(i64, i8)]) -> Database {
    let mut db = Database::new();
    let mut f = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("c", AttrType::Categorical),
        ("x", AttrType::Double),
    ]));
    for &(a, b, x) in rows {
        // A derived categorical code keeps the generator's value space.
        let c = (a + 2 * b) % 3;
        f.push_row(&[Value::Int(a), Value::Int(b), Value::Int(c), Value::F64(x as f64)]).unwrap();
    }
    let mut r1 = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("w", AttrType::Categorical),
        ("u", AttrType::Double),
    ]));
    for &(a, u) in d1 {
        r1.push_row(&[Value::Int(a), Value::Int(a % 2), Value::F64(u as f64)]).unwrap();
    }
    let mut r2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
    for &(b, v) in d2 {
        r2.push_row(&[Value::Int(b), Value::F64(v as f64)]).unwrap();
    }
    db.add("F", f);
    db.add("D1", r1);
    db.add("D2", r2);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_snowflakes(
        rows in proptest::collection::vec((0i64..4, 0i64..4, -5i8..5), 0..25),
        d1 in proptest::collection::vec((0i64..4, -5i8..5), 0..8),
        d2 in proptest::collection::vec((0i64..4, -5i8..5), 0..8),
        threshold in -4i8..4,
    ) {
        let db = snowflake(&rows, &d1, &d2);
        let rels = ["F", "D1", "D2"];

        // Covariance batch through flat / factorized / LMFAO.
        let cov = AggQuery::new(&rels, covariance_batch(&["x", "u", "v"], &[]));
        let res = assert_engines_agree(&db, &cov);

        // … and through F-IVM, streaming every tuple.
        let streamed = FivmEngine.run(&db, &cov).unwrap();
        for i in 0..cov.batch.len() {
            let (a, b) = (streamed.scalar(i), res.scalar(i));
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "agg {}: fivm {} vs batch {}", i, a, b);
        }

        // A filtered aggregate exercises per-backend filter pushdown.
        let mut filtered = AggBatch::new();
        filtered.push(Aggregate::sum("x").filtered("u", FilterOp::Ge(threshold as f64)));
        filtered.push(Aggregate::count().filtered("x", FilterOp::Lt(threshold as f64)));
        assert_engines_agree(&db, &AggQuery::new(&rels, filtered));

        // Grouped aggregates over the categorical codes (the dense
        // GroupIndex path): all engines, incl. the hash fallbacks, agree.
        // `SUM(x)` with x ∈ [-5, 5] cancels to exactly 0.0 on some random
        // groups, so this also pins the exact-zero-dropped contract to the
        // representation-independent key counts.
        let grouped = AggQuery::new(&rels, covariance_batch(&["x", "u"], &["c", "w"]));
        let expect = assert_engines_agree(&db, &grouped);

        // The domain-threshold boundary: c spans ≤ 3 codes, w ≤ 2, so
        // limits 1..6 straddle per-view dense/hash splits (some views of
        // one plan dense, others hash). Every limit must reproduce the
        // same batch result.
        for limit in [0u64, 1, 2, 3, 6] {
            let cfg = EngineConfig { threads: 1, dense_limit: limit, ..Default::default() };
            let got = LmfaoEngine::with_config(cfg).run(&db, &grouped).unwrap();
            assert_results_match(&expect, &got, &format!("dense_limit={limit}"), grouped.batch.len());
        }
    }
}

/// The factorized engine must give identical results whether its sorted
/// views are freshly computed (cold cache) or served warm, and a warm
/// re-preparation must not sort anything new.
#[test]
fn factorized_agrees_with_cache_warm_and_cold() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    let q = AggQuery::new(
        &rels,
        covariance_batch(&["prize", "maxtemp", "inventoryunits"], &["rain", "category"]),
    );
    // Cold (global cache, fresh relation identities) vs warm (second run)
    // vs fully uncached: identical results.
    let engine = FactorizedEngine::new();
    let cold = engine.run(&ds.db, &q).unwrap();
    let warm = engine.run(&ds.db, &q).unwrap();
    assert_results_match(&cold, &warm, "warm-vs-cold", q.batch.len());
    let uncached = FactorizedEngine { use_sort_cache: false, ..FactorizedEngine::new() }
        .run(&ds.db, &q)
        .unwrap();
    assert_results_match(&cold, &uncached, "uncached", q.batch.len());

    // Sort accounting against a *private* cache: the global one is churned
    // by concurrently-running tests in this binary (FIFO eviction would
    // make a zero-re-sort assertion flaky there).
    let cache = fdb::data::SortCache::new(32);
    let sorts = || -> u64 { rels.iter().map(|r| cache.stats_for(ds.db.get(r).unwrap()).1).sum() };
    let grefs = ["category", "rain"];
    let cold_spec =
        fdb::factorized::EvalSpec::new_with_cache(&ds.db, &rels, &grefs, Some(&cache)).unwrap();
    let after_cold = sorts();
    assert!(after_cold > 0, "cold preparation sorts the relations");
    let warm_spec =
        fdb::factorized::EvalSpec::new_with_cache(&ds.db, &rels, &grefs, Some(&cache)).unwrap();
    assert_eq!(sorts(), after_cold, "warm preparation re-sorts nothing");
    assert_eq!(cold_spec.count(), warm_spec.count(), "same join either way");
}
