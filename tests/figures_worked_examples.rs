//! Integration tests pinning the exact numbers of the paper's worked
//! examples (Figures 7–10) across the data, factorized, and ring crates.

use fdb::datasets::dish_database;
use fdb::factorized::hypergraph::Hypergraph;
use fdb::factorized::{EvalSpec, FRep, VarOrder};
use fdb::prelude::*;
use fdb::ring::{F64Ring, I64Ring, KeyedRing};

const RELS: [&str; 3] = ["Orders", "Dish", "Items"];

#[test]
fn figure7_flat_join() {
    let db = dish_database();
    let frep = FRep::build(&db, &RELS).unwrap();
    let flat = frep.enumerate().unwrap();
    assert_eq!(flat.len(), 12);
    assert_eq!(flat.schema().arity(), 5);
}

#[test]
fn figure8_factorization_sizes() {
    let db = dish_database();
    // The paper's order (dish at the root) — 19 values with sharing.
    let hg = Hypergraph::natural_join(&db, &RELS).unwrap();
    let jt = hg.join_tree().unwrap().rerooted(1);
    let vo = VarOrder::from_join_tree(&hg, &jt);
    let frep = FRep::build_with_order(&db, &RELS, hg, vo).unwrap();
    assert_eq!(frep.size_values(), 19);
    assert!(frep.size_values() < 32, "beats the input's 32 values");
}

#[test]
fn figure9_aggregates_over_factorization() {
    let db = dish_database();
    let frep = FRep::build(&db, &RELS).unwrap();
    assert_eq!(frep.eval(&I64Ring, &mut |_, _| 1), 12);
    let hg = frep.hypergraph();
    let (dish, price) = (hg.var_id("dish").unwrap(), hg.var_id("price").unwrap());
    let ring = KeyedRing::new(F64Ring, 1);
    let grouped = frep.eval(&ring, &mut |var, value| {
        if var == dish {
            ring.tag(0, value, 1.0)
        } else if var == price {
            ring.scalar(value.as_f64())
        } else {
            ring.one()
        }
    });
    let burger: Box<[Value]> = vec![Value::Int(0)].into();
    let hotdog: Box<[Value]> = vec![Value::Int(1)].into();
    assert_eq!(grouped.get(&burger).copied(), Some(20.0));
    assert_eq!(grouped.get(&hotdog).copied(), Some(16.0));
}

#[test]
fn figure10_covariance_ring_triples() {
    // The fused evaluator computes the same (c, s, Q) triple the figure
    // assembles by hand: count 12, SUM(price) 36.
    let db = dish_database();
    let spec = EvalSpec::new(&db, &RELS, &[]).unwrap();
    let ring = CovRing::new(1);
    let price_col = spec.col_index(2, "price").unwrap();
    let triple = spec.eval(
        &ring,
        |_, _| ring.one(),
        |ri, rows| {
            let mut acc = ring.zero();
            for r in rows {
                if ri == 2 {
                    let p = spec.relation(2).f64_col(price_col)[r];
                    ring.add_assign(&mut acc, &ring.lift(&[p]));
                } else {
                    ring.add_assign(&mut acc, &ring.one());
                }
            }
            acc
        },
    );
    assert_eq!(triple.c, 12.0);
    assert_eq!(triple.s[0], 36.0);
    assert_eq!(triple.q_at(0, 0), 136.0); // 2·(36+4+4) + 2·(4+4+16)
}
