//! Chaos property suite for the transactional delta pipeline.
//!
//! Two layers:
//!
//! * **Always compiled** — delta edge cases (empty batches, insert+delete
//!   of the same row in one batch, mid-batch arity/type mismatches) and
//!   panic containment (a worker that panics surfaces as a structured
//!   [`DataError::WorkerPanic`], never a process abort).
//! * **`--features fault-injection`** — randomized fault schedules
//!   ([`fdb::data::fault::FaultPlan`]) against random delta streams
//!   across every engine composition. The invariant, checked after every
//!   delta: the apply either *succeeds* and agrees with a cold flat-engine
//!   recompute over an equivalently mutated shadow database, or *fails*
//!   and leaves the maintained database bit-identical — rows **and**
//!   [`Relation::data_id`]s — to the last good epoch, with `eval` still
//!   serving the last good result. Never a half-applied state.
//!
//! The fault plan is process-global (worker threads must see it), so
//! every test that installs one serializes on [`fault_lock`] and clears
//! the plan before releasing it.

use fdb::data::{AttrType, DataError, Database, Delta, Relation, Schema, Value};
use fdb::prelude::*;

mod common;

// ---------------------------------------------------------------------------
// Shared fixture: a small snowflake and a mixed aggregate batch
// ---------------------------------------------------------------------------

/// F(a, b, c, x) ⋈ D1(a, w, u) ⋈ D2(b, v), sized by `nf` fact rows.
/// Integer-valued measures so incremental and cold sums are bit-exact.
fn snowflake(nf: usize) -> Database {
    let mut db = Database::new();
    let mut f = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("c", AttrType::Categorical),
        ("x", AttrType::Double),
    ]));
    for i in 0..nf as i64 {
        let (a, b) = (i % 3, i % 2);
        f.push_row(&[Value::Int(a), Value::Int(b), Value::Int((a + b) % 3), Value::F64(i as f64)])
            .unwrap();
    }
    let mut d1 = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("w", AttrType::Categorical),
        ("u", AttrType::Double),
    ]));
    for a in 0..3i64 {
        d1.push_row(&[Value::Int(a), Value::Int(a % 2), Value::F64((2 - a) as f64)]).unwrap();
    }
    let mut d2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
    for b in 0..2i64 {
        d2.push_row(&[Value::Int(b), Value::F64((b + 1) as f64)]).unwrap();
    }
    db.add("F", f);
    db.add("D1", d1);
    db.add("D2", d2);
    db
}

fn query() -> AggQuery {
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("x"));
    batch.push(Aggregate::sum_prod("x", "u"));
    batch.push(Aggregate::count().by(&["c"]));
    batch.push(Aggregate::sum("x").by(&["c", "w"]));
    batch.push(Aggregate::sum("v").filtered("u", FilterOp::Ge(0.0)));
    AggQuery::new(&["F", "D1", "D2"], batch)
}

fn frow(a: i64, b: i64, x: f64) -> Vec<Value> {
    vec![Value::Int(a), Value::Int(b), Value::Int((a + b) % 3), Value::F64(x)]
}

/// Snapshot of every relation's rows and content id — the "epoch" the
/// rollback contract is stated in.
fn epoch(db: &Database) -> Vec<(String, Relation, u64)> {
    db.names()
        .iter()
        .map(|n| (n.clone(), db.get(n).unwrap().clone(), db.get(n).unwrap().data_id()))
        .collect()
}

fn assert_epoch(tag: &str, db: &Database, want: &[(String, Relation, u64)]) {
    assert_eq!(db.len(), want.len(), "{tag}: relation count");
    for (name, rel, id) in want {
        let got = db.get(name).unwrap_or_else(|_| panic!("{tag}: `{name}` missing"));
        assert_eq!(got, rel, "{tag}: `{name}` rows diverged from the last good epoch");
        assert_eq!(got.data_id(), *id, "{tag}: `{name}` data_id diverged");
    }
}

// ---------------------------------------------------------------------------
// Delta edge cases (feature-independent)
// ---------------------------------------------------------------------------

#[test]
fn empty_delta_batches_are_clean_no_ops() {
    let db = snowflake(6);
    let q = query();
    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let mut st = engine.prepare(&db, &q).unwrap();
    let before = epoch(st.database());
    let baseline = engine.eval(&mut st).unwrap();
    let got = engine.apply_delta(&mut st, &Delta::new("F")).unwrap();
    common::assert_results_match(&baseline, &got, "empty delta", q.batch.len(), 1e-12);
    assert_epoch("empty delta", st.database(), &before);
}

#[test]
fn insert_and_delete_of_the_same_row_cancel_within_a_batch() {
    let db = snowflake(6);
    let q = query();
    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let mut st = engine.prepare(&db, &q).unwrap();
    let mut shadow = db.clone();
    // Delete-of-just-inserted: the row never existed in the base, so the
    // sequential resolution must cancel it against the pending insert.
    let fresh = frow(2, 1, 99.0);
    let d = Delta::new("F").with_insert(fresh.clone()).with_delete(fresh);
    let got = engine.apply_delta(&mut st, &d).unwrap();
    shadow.apply_delta(&d).unwrap();
    let cold = FlatEngine.run(&shadow, &q).unwrap();
    common::assert_results_match(&cold, &got, "insert+delete cancel", q.batch.len(), 1e-9);
    assert_eq!(st.database().get("F").unwrap().len(), 6, "net row count unchanged");
    // Duplicate row: insert a row equal to an existing one, delete one
    // copy in the same batch — multiset semantics leave exactly one.
    let dup = st.database().get("F").unwrap().row_vec(0);
    let d = Delta::new("F").with_insert(dup.clone()).with_delete(dup);
    let got = engine.apply_delta(&mut st, &d).unwrap();
    shadow.apply_delta(&d).unwrap();
    let cold = FlatEngine.run(&shadow, &q).unwrap();
    common::assert_results_match(&cold, &got, "duplicate insert+delete", q.batch.len(), 1e-9);
    assert_eq!(st.database().get("F").unwrap().len(), 6);
}

#[test]
fn mid_batch_schema_mismatches_roll_back_completely() {
    let db = snowflake(6);
    let q = query();
    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let mut st = engine.prepare(&db, &q).unwrap();
    let before = epoch(st.database());
    let good = engine.eval(&mut st).unwrap();
    // A valid insert followed by an arity mismatch: the earlier row of
    // the same batch must not stick.
    let arity = Delta::new("F").with_insert(frow(1, 1, 8.0)).with_insert(vec![Value::Int(0)]);
    assert!(matches!(
        engine.apply_delta(&mut st, &arity),
        Err(DataError::ArityMismatch { expected: 4, got: 1 })
    ));
    assert_epoch("arity mismatch", st.database(), &before);
    // Type mismatch mid-batch.
    let ty = Delta::new("F").with_insert(frow(0, 0, 5.0)).with_insert(vec![
        Value::F64(0.0),
        Value::Int(0),
        Value::Int(0),
        Value::F64(1.0),
    ]);
    assert!(matches!(engine.apply_delta(&mut st, &ty), Err(DataError::TypeMismatch { .. })));
    assert_epoch("type mismatch", st.database(), &before);
    // Delete of an absent row after a valid insert in the same batch.
    let del = Delta::new("F").with_insert(frow(1, 0, 3.0)).with_delete(frow(2, 1, -77.0));
    assert!(matches!(engine.apply_delta(&mut st, &del), Err(DataError::Invalid(_))));
    assert_epoch("absent delete", st.database(), &before);
    // The maintained result still serves the last good epoch.
    common::assert_results_match(
        &good,
        &engine.eval(&mut st).unwrap(),
        "after rejected batches",
        q.batch.len(),
        1e-12,
    );
}

// ---------------------------------------------------------------------------
// Panic containment (feature-independent)
// ---------------------------------------------------------------------------

/// An engine whose `run` always panics — stands in for any internal
/// invariant violation inside worker code.
struct PanickyEngine;

impl Engine for PanickyEngine {
    fn name(&self) -> &'static str {
        "panicky"
    }

    fn run(&self, _db: &Database, _q: &AggQuery) -> Result<BatchResult, DataError> {
        panic!("engine invariant violated")
    }
}

impl MaintainableEngine for PanickyEngine {}

#[test]
fn worker_panics_surface_as_structured_errors_not_aborts() {
    let db = snowflake(8);
    let q = query();
    // Sharded execution: the panic fires inside a stealing worker (and
    // again in the degraded unsharded retry); both are contained.
    let sharded = ShardedEngine::with_shards(PanickyEngine, 2).with_min_rows_per_shard(1);
    match sharded.run(&db, &q) {
        Err(DataError::WorkerPanic(msg)) => {
            assert!(msg.contains("engine invariant violated"), "payload preserved: {msg}")
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    // The maintenance wrapper: a panic mid-maintenance rolls the state's
    // database back to the pre-delta epoch and returns Err.
    let mut st = MaintState::recompute(db.clone(), q.clone());
    let before = epoch(st.database());
    match PanickyEngine.apply_delta(&mut st, &Delta::insert("F", frow(0, 0, 1.0))) {
        Err(DataError::WorkerPanic(msg)) => {
            assert!(msg.contains("engine invariant violated"), "payload preserved: {msg}")
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert_epoch("after contained panic", st.database(), &before);
}

// ---------------------------------------------------------------------------
// Randomized fault schedules (the chaos layer; needs `fault-injection`)
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod chaos {
    use super::*;
    use fdb::data::fault::{self, FaultPlan};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes every test that installs a process-global fault plan.
    fn fault_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
    }

    /// splitmix64 — the same tiny deterministic generator the fault plans
    /// use, re-derived here so delta streams reproduce from the seed.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = self.0;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Every named site the pipeline checks, across all layers.
    const SITES: &[&str] = &[
        "delta-validate",
        "delta-commit",
        "maintain-view",
        "maintain-publish",
        "morsel-exec",
        "cache-admit",
        "cache-evict",
        "csv-ingest",
    ];

    /// A random schedule: 1–3 rules over random sites, mixing pinned
    /// occurrences, probabilistic firing, errors, and panics.
    fn random_plan(rng: &mut Rng, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for _ in 0..1 + rng.below(3) {
            let site = SITES[rng.below(SITES.len() as u64) as usize];
            let panic = rng.below(2) == 0;
            plan = match (rng.below(2) == 0, panic) {
                (true, false) => plan.fail_at(site, 1 + rng.below(4)),
                (true, true) => plan.panic_at(site, 1 + rng.below(4)),
                (false, false) => plan.fail_with_probability(site, 0.25),
                (false, true) => plan.panic_with_probability(site, 0.25),
            };
        }
        plan
    }

    /// A random valid delta against the current shadow: inserts stay
    /// inside the prepare-time ranges, deletes pick existing rows.
    fn random_delta(rng: &mut Rng, shadow: &Database) -> Delta {
        match rng.below(4) {
            // Fact insert (possibly a multi-row batch).
            0 => {
                let mut d = Delta::new("F");
                for _ in 0..1 + rng.below(2) {
                    d = d.with_insert(frow(
                        rng.below(3) as i64,
                        rng.below(2) as i64,
                        rng.below(9) as f64,
                    ));
                }
                d
            }
            // Fact delete of an existing row.
            1 => {
                let f = shadow.get("F").unwrap();
                if f.is_empty() {
                    return Delta::insert("F", frow(0, 0, 1.0));
                }
                Delta::delete("F", f.row_vec(rng.below(f.len() as u64) as usize))
            }
            // Mixed fact batch: insert + delete in one delta.
            2 => {
                let f = shadow.get("F").unwrap();
                let ins = frow(rng.below(3) as i64, rng.below(2) as i64, rng.below(9) as f64);
                if f.is_empty() {
                    return Delta::insert("F", ins);
                }
                Delta::new("F")
                    .with_insert(ins)
                    .with_delete(f.row_vec(rng.below(f.len() as u64) as usize))
            }
            // Dimension churn: delete + reinsert a D2 row (keeps join
            // keys covered so cold runs stay comparable).
            _ => {
                let d2 = shadow.get("D2").unwrap();
                let row = d2.row_vec(rng.below(d2.len() as u64) as usize);
                Delta::new("D2").with_delete(row.clone()).with_insert(row)
            }
        }
    }

    fn chaos_panel() -> Vec<(&'static str, Box<dyn MaintainableEngine>)> {
        let seq = EngineConfig { threads: 2, ..Default::default() };
        vec![
            ("flat", Box::new(FlatEngine)),
            ("lmfao", Box::new(LmfaoEngine::with_config(seq))),
            (
                "sharded-lmfao",
                Box::new(
                    ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 2)
                        .with_min_rows_per_shard(1),
                ),
            ),
            ("dispatch", Box::new(DispatchEngine::new())),
        ]
    }

    /// One chaos run: a fresh state, a random fault schedule, a random
    /// delta stream; after every delta the engine either agrees with the
    /// cold recompute or has rolled back bit-identically.
    fn chaos_run(name: &str, engine: &dyn MaintainableEngine, seed: u64) -> (u64, u64) {
        let mut rng = Rng(seed);
        let db = snowflake(4 + rng.below(8) as usize);
        let q = query();
        fault::mute(true);
        let mut st = engine.prepare(&db, &q).expect("prepare under mute");
        fault::mute(false);
        let mut shadow = db.clone();
        let mut last_good = epoch(st.database());
        let (mut oks, mut errs) = (0u64, 0u64);
        for step in 0..5 {
            let d = random_delta(&mut rng, &shadow);
            let tag = format!("{name} seed {seed} step {step}");
            let applied = engine.apply_delta(&mut st, &d);
            // Verification runs muted: it must neither fire sites nor
            // consume scheduled occurrences.
            fault::mute(true);
            match applied {
                Ok(got) => {
                    oks += 1;
                    shadow.apply_delta(&d).unwrap_or_else(|e| panic!("{tag}: shadow: {e}"));
                    let cold = FlatEngine.run(&shadow, &q).expect("cold run");
                    common::assert_results_match(&cold, &got, &tag, q.batch.len(), 1e-9);
                    last_good = epoch(st.database());
                }
                Err(_) => {
                    errs += 1;
                    assert_epoch(&tag, st.database(), &last_good);
                    // The recovered state still serves the last epoch.
                    let eval = engine
                        .eval(&mut st)
                        .unwrap_or_else(|e| panic!("{tag}: eval after rollback: {e}"));
                    let cold = FlatEngine.run(&shadow, &q).expect("cold run");
                    common::assert_results_match(&cold, &eval, &tag, q.batch.len(), 1e-9);
                }
            }
            fault::mute(false);
        }
        (oks, errs)
    }

    /// 200 seeds per engine composition. Every seed reruns exactly from
    /// its number: the delta stream and the fault schedule both derive
    /// from splitmix64, nothing ambient.
    #[test]
    fn randomized_fault_schedules_never_leave_half_applied_state() {
        let _guard = fault_lock();
        for (name, engine) in chaos_panel() {
            let (mut oks, mut errs) = (0u64, 0u64);
            for seed in 0..200u64 {
                let mut rng = Rng(seed ^ 0xC0FFEE);
                fault::install(random_plan(&mut rng, seed));
                let (o, e) = chaos_run(name, engine.as_ref(), seed);
                oks += o;
                errs += e;
                fault::clear();
            }
            // The schedules must actually exercise both outcomes.
            assert!(oks > 0, "{name}: no delta ever succeeded across 200 runs");
            assert!(errs > 0, "{name}: no fault ever fired across 200 runs");
        }
    }

    /// A fault *after* the maintained path was re-admitted to the view
    /// cache must not leave entries keyed by rolled-back content ids: the
    /// wrapper invalidates them eagerly (cache hygiene, not correctness —
    /// `data_id`s are never reused, so a stale entry could only waste
    /// memory, never serve wrong data).
    #[test]
    fn rolled_back_deltas_do_not_leave_stale_maintained_views_cached() {
        let _guard = fault_lock();
        let db = snowflake(6);
        let q = query();
        let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
        fault::mute(true);
        let mut st = engine.prepare(&db, &q).unwrap();
        fault::mute(false);
        let before = epoch(st.database());
        let invalidated_before = fdb::lmfao::ViewCache::global().stats().invalidated;
        fault::install(FaultPlan::new(1).fail_at("maintain-publish", 1));
        let err = engine.apply_delta(&mut st, &Delta::insert("F", frow(1, 1, 4.0))).unwrap_err();
        assert!(matches!(err, DataError::Injected(_)), "got {err:?}");
        fault::clear();
        assert_epoch("publish fault", st.database(), &before);
        let invalidated_after = fdb::lmfao::ViewCache::global().stats().invalidated;
        assert!(
            invalidated_after > invalidated_before,
            "entries admitted under the rolled-back id must be dropped \
             ({invalidated_before} -> {invalidated_after})"
        );
        // And the same delta applies cleanly afterwards.
        let mut shadow = db.clone();
        let d = Delta::insert("F", frow(1, 1, 4.0));
        let got = engine.apply_delta(&mut st, &d).unwrap();
        shadow.apply_delta(&d).unwrap();
        let cold = FlatEngine.run(&shadow, &q).unwrap();
        common::assert_results_match(&cold, &got, "post-rollback reapply", q.batch.len(), 1e-9);
    }

    /// CSV ingest faults surface as clean typed errors (never panics —
    /// the site demotes), and hit accounting tracks them.
    #[test]
    fn csv_ingest_faults_are_clean_typed_errors() {
        let _guard = fault_lock();
        let schema = Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]);
        let bytes = b"1,1.5\n2,2.5\n3,3.5\n";
        fault::install(FaultPlan::new(9).panic_at("csv-ingest", 2));
        let err = fdb::data::csv::read_csv(schema.clone(), bytes).unwrap_err();
        assert!(matches!(err, DataError::Injected(_)), "panic demoted: {err:?}");
        assert_eq!(fault::hit_count("csv-ingest"), 1);
        fault::clear();
        let rel = fdb::data::csv::read_csv(schema, bytes).unwrap();
        assert_eq!(rel.len(), 3);
    }
}
