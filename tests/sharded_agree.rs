//! Sharded execution and adaptive dispatch agree with direct execution.
//!
//! The contract: wrapping any backend in `ShardedEngine` — any shard
//! count — changes *where* work happens, never the result. Group
//! attribute order, categorical code keys, and the exactly-zero-dropped
//! represented key set must all survive partition + ring-additive merge
//! (cross-shard cancellation is re-dropped post-merge). Likewise,
//! `DispatchEngine` only ever picks among agreeing backends, so whatever
//! it chooses must reproduce every pinned backend's answer.

use fdb::data::{AttrType, Database, Relation, Schema, Value};
use fdb::lmfao::covariance_batch;
use fdb::prelude::*;
use proptest::prelude::*;

mod common;

/// Shard counts exercised everywhere: below, at, and above typical core
/// counts, including one above most test relations' cardinalities (empty
/// tail shards).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// Strict agreement: integer-valued test data makes shard merges exact,
/// so the tight tolerance only absorbs differences in float *summation
/// order* on real-valued datasets.
fn assert_results_match(base: &BatchResult, got: &BatchResult, tag: &str, naggs: usize) {
    common::assert_results_match(base, got, tag, naggs, 1e-9);
}

/// Runs `q` sharded N ways over every backend and checks each against its
/// own unsharded run; returns the unsharded flat result as ground truth.
fn assert_sharded_agrees(db: &Database, q: &AggQuery) -> BatchResult {
    let naggs = q.batch.len();
    let seq = EngineConfig::sequential();
    for &n in &SHARD_COUNTS {
        let flat = FlatEngine.run(db, q).unwrap();
        let sharded_flat = ShardedEngine::with_shards(FlatEngine, n)
            .with_min_rows_per_shard(1)
            .run(db, q)
            .unwrap();
        assert_results_match(&flat, &sharded_flat, &format!("flat x{n}"), naggs);

        let fac = FactorizedEngine::new().run(db, q).unwrap();
        let sharded_fac = ShardedEngine::with_shards(FactorizedEngine::new(), n)
            .with_min_rows_per_shard(1)
            .run(db, q)
            .unwrap();
        assert_results_match(&fac, &sharded_fac, &format!("factorized x{n}"), naggs);

        let lm = LmfaoEngine::with_config(seq).run(db, q).unwrap();
        let sharded_lm = ShardedEngine::with_shards(LmfaoEngine::with_config(seq), n)
            .with_min_rows_per_shard(1)
            .run(db, q)
            .unwrap();
        assert_results_match(&lm, &sharded_lm, &format!("lmfao x{n}"), naggs);

        // Cross-backend: sharded results also agree with each *other*.
        assert_results_match(&sharded_flat, &sharded_fac, &format!("flat vs fac x{n}"), naggs);
        assert_results_match(&sharded_flat, &sharded_lm, &format!("flat vs lmfao x{n}"), naggs);
    }
    FlatEngine.run(db, q).unwrap()
}

/// The dispatcher must agree with every backend it can choose from —
/// whatever `Auto` picks, and each pinned override.
fn assert_dispatch_agrees(db: &Database, q: &AggQuery) {
    let base = FlatEngine.run(db, q).unwrap();
    let auto = DispatchEngine::new();
    assert_results_match(&base, &auto.run(db, q).unwrap(), "dispatch auto", q.batch.len());
    for choice in [EngineChoice::Flat, EngineChoice::Factorized, EngineChoice::Lmfao] {
        let pinned =
            DispatchEngine::with_config(EngineConfig { backend: choice, ..Default::default() });
        assert_eq!(pinned.choose(db, q).unwrap(), choice, "override honoured");
        assert_results_match(
            &base,
            &pinned.run(db, q).unwrap(),
            &format!("dispatch {choice:?}"),
            q.batch.len(),
        );
    }
}

#[test]
fn sharded_backends_agree_on_dish() {
    let db = fdb::datasets::dish::dish_database();
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("price"));
    batch.push(Aggregate::count().by(&["customer"]));
    batch.push(Aggregate::sum("price").by(&["day", "customer"]));
    batch.push(Aggregate::sum("price").filtered("price", FilterOp::Ge(3.0)));
    let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
    let res = assert_sharded_agrees(&db, &q);
    // Figure 9 ground truth survives sharding: 12 join tuples.
    assert_eq!(res.scalar(0), 12.0);
    assert_dispatch_agrees(&db, &q);
}

#[test]
fn sharded_backends_agree_on_retailer() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    let cov = covariance_batch(&["prize", "maxtemp", "inventoryunits"], &["rain", "category"]);
    let q = AggQuery::new(&rels, cov);
    assert_sharded_agrees(&ds.db, &q);
    assert_dispatch_agrees(&ds.db, &q);
}

#[test]
fn sharding_composes_with_dispatch() {
    // The two layers are orthogonal: sharding the *dispatching* engine
    // must agree with the unsharded dispatcher (and so with everything).
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    let q = AggQuery::new(&rels, covariance_batch(&["prize", "inventoryunits"], &["rain"]));
    let base = DispatchEngine::new().run(&ds.db, &q).unwrap();
    for &n in &SHARD_COUNTS {
        let got = ShardedEngine::with_shards(DispatchEngine::new(), n)
            .with_min_rows_per_shard(1)
            .run(&ds.db, &q)
            .unwrap();
        assert_results_match(&base, &got, &format!("sharded dispatch x{n}"), q.batch.len());
    }
}

/// A random 3-relation snowflake: F(a, b, c, x) ⋈ D1(a, w, u) ⋈ D2(b, v),
/// with categorical codes `c` (fact) and `w` (dimension) for group-bys —
/// the same generator family as `tests/engines_agree.rs`.
fn snowflake(rows: &[(i64, i64, i8)], d1: &[(i64, i8)], d2: &[(i64, i8)]) -> Database {
    let mut db = Database::new();
    let mut f = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("c", AttrType::Categorical),
        ("x", AttrType::Double),
    ]));
    for &(a, b, x) in rows {
        let c = (a + 2 * b) % 3;
        f.push_row(&[Value::Int(a), Value::Int(b), Value::Int(c), Value::F64(x as f64)]).unwrap();
    }
    let mut r1 = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("w", AttrType::Categorical),
        ("u", AttrType::Double),
    ]));
    for &(a, u) in d1 {
        r1.push_row(&[Value::Int(a), Value::Int(a % 2), Value::F64(u as f64)]).unwrap();
    }
    let mut r2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
    for &(b, v) in d2 {
        r2.push_row(&[Value::Int(b), Value::F64(v as f64)]).unwrap();
    }
    db.add("F", f);
    db.add("D1", r1);
    db.add("D2", r2);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized agreement: sharded(N ∈ {1,2,3,7}) × every engine ≡
    /// unsharded, on snowflakes whose integer-valued measures make
    /// cancellation to *exactly* 0.0 common — so the post-merge zero
    /// re-drop (not just per-shard dropping) is what keeps the
    /// represented key sets identical.
    #[test]
    fn sharded_engines_agree_on_random_snowflakes(
        rows in proptest::collection::vec((0i64..4, 0i64..4, -5i8..5), 0..25),
        d1 in proptest::collection::vec((0i64..4, -5i8..5), 0..8),
        d2 in proptest::collection::vec((0i64..4, -5i8..5), 0..8),
        threshold in -4i8..4,
    ) {
        let db = snowflake(&rows, &d1, &d2);
        let rels = ["F", "D1", "D2"];

        // Scalar covariance batch (wide: exercises the lmfao-ish shapes).
        let cov = AggQuery::new(&rels, covariance_batch(&["x", "u", "v"], &[]));
        assert_sharded_agrees(&db, &cov);

        // Grouped over the categorical codes: dense GroupIndex paths and
        // `SUM(x)` values that cancel to exactly 0.0 on random groups.
        let grouped = AggQuery::new(&rels, covariance_batch(&["x", "u"], &["c", "w"]));
        assert_sharded_agrees(&db, &grouped);
        assert_dispatch_agrees(&db, &grouped);

        // A filtered narrow batch (dispatch heuristic's factorized lane).
        let mut filtered = AggBatch::new();
        filtered.push(Aggregate::sum("x").filtered("u", FilterOp::Ge(threshold as f64)));
        filtered.push(Aggregate::count().by(&["w"]).filtered("x", FilterOp::Lt(threshold as f64)));
        let fq = AggQuery::new(&rels, filtered);
        assert_sharded_agrees(&db, &fq);
        assert_dispatch_agrees(&db, &fq);
    }
}

/// The default small-fact threshold makes tiny joins run unwrapped
/// (identical results, no partition overhead) — and the fallback composes
/// with dispatch, so `ShardedEngine<DispatchEngine>` never pays the
/// partition + merge bill on the example databases either.
#[test]
fn default_threshold_falls_back_on_tiny_facts_with_identical_results() {
    let db = fdb::datasets::dish::dish_database();
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("price").by(&["customer"]));
    let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
    let base = FlatEngine.run(&db, &q).unwrap();
    for &n in &SHARD_COUNTS {
        let flat = ShardedEngine::with_shards(FlatEngine, n).run(&db, &q).unwrap();
        assert_results_match(&base, &flat, &format!("fallback flat x{n}"), q.batch.len());
        let dispatch = ShardedEngine::with_shards(DispatchEngine::new(), n).run(&db, &q).unwrap();
        assert_results_match(&base, &dispatch, &format!("fallback dispatch x{n}"), q.batch.len());
    }
}

/// Pinning the shard to a dimension relation is legal (any single
/// relation partitions the join) and must agree too.
#[test]
fn sharding_a_dimension_relation_also_agrees() {
    let db = fdb::datasets::dish::dish_database();
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("price").by(&["customer"]));
    let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
    let base = FlatEngine.run(&db, &q).unwrap();
    for fact in ["Orders", "Dish", "Items"] {
        for &n in &SHARD_COUNTS {
            let e =
                ShardedEngine::with_shards(LmfaoEngine::with_config(EngineConfig::sequential()), n)
                    .with_fact(fact)
                    .with_min_rows_per_shard(1);
            let got = e.run(&db, &q).unwrap();
            assert_results_match(&base, &got, &format!("fact {fact} x{n}"), q.batch.len());
        }
    }
}
