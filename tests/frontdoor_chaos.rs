//! Chaos suite for the serving front door (`--features fault-injection`).
//!
//! The acceptance contract, checked over ≥200 seeded fault schedules
//! spanning the queue, writer, breaker, and maintenance sites:
//!
//! * every reader-observed `(epoch, result)` pair is **bit-identical** to
//!   a cold recompute over an equivalently mutated shadow database at
//!   exactly that epoch;
//! * refused (rejected / timed-out) submits and dropped batches never
//!   publish an epoch;
//! * once the faults clear, the queue fully drains and the final epoch
//!   equals the count of committed batches;
//! * retry/backoff is deterministic: two runs under the same seeded
//!   [`FaultPlan`] produce identical retry counts, epochs, and results.
//!
//! The fault plan is process-global, so every test here serializes on
//! [`fault_lock`] and clears the plan before releasing it.
#![cfg(feature = "fault-injection")]

use fdb::data::fault::{self, FaultPlan};
use fdb::data::{AttrType, Database, Delta, Relation, Schema, Value};
use fdb::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes every test that installs a process-global fault plan.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

/// splitmix64 — the same deterministic generator the fault plans use, so
/// delta streams reproduce from their seeds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, p_percent: u64) -> bool {
        self.below(100) < p_percent
    }
}

/// F(a, b, c, x) ⋈ D1(a, w, u) ⋈ D2(b, v) — integer-valued measures so
/// incremental and cold aggregates are bit-exact (mirrors
/// `tests/fault_agree.rs`).
fn snowflake(nf: usize) -> Database {
    let mut db = Database::new();
    let mut f = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("c", AttrType::Categorical),
        ("x", AttrType::Double),
    ]));
    for i in 0..nf as i64 {
        let (a, b) = (i % 3, i % 2);
        f.push_row(&[Value::Int(a), Value::Int(b), Value::Int((a + b) % 3), Value::F64(i as f64)])
            .unwrap();
    }
    let mut d1 = Relation::new(Schema::of(&[
        ("a", AttrType::Int),
        ("w", AttrType::Categorical),
        ("u", AttrType::Double),
    ]));
    for a in 0..3i64 {
        d1.push_row(&[Value::Int(a), Value::Int(a % 2), Value::F64((2 - a) as f64)]).unwrap();
    }
    let mut d2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
    for b in 0..2i64 {
        d2.push_row(&[Value::Int(b), Value::F64((b + 1) as f64)]).unwrap();
    }
    db.add("F", f);
    db.add("D1", d1);
    db.add("D2", d2);
    db
}

fn query() -> AggQuery {
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("x"));
    batch.push(Aggregate::count().by(&["c"]));
    batch.push(Aggregate::sum("x").by(&["c", "w"]));
    AggQuery::new(&["F", "D1", "D2"], batch)
}

fn frow(a: i64, b: i64, x: f64) -> Vec<Value> {
    vec![Value::Int(a), Value::Int(b), Value::Int((a + b) % 3), Value::F64(x)]
}

/// A canonical, `Eq`-comparable digest of a result: per aggregate, every
/// represented key mapped to the f64 *bit pattern* of its value.
fn digest(r: &BatchResult, naggs: usize) -> Vec<BTreeMap<String, u64>> {
    (0..naggs)
        .map(|i| r.grouped(i).iter().map(|(k, v)| (format!("{k:?}"), v.to_bits())).collect())
        .collect()
}

fn assert_bit_identical(expect: &BatchResult, got: &BatchResult, tag: &str, naggs: usize) {
    assert_eq!(digest(expect, naggs), digest(got, naggs), "{tag}");
}

fn lmfao_seq() -> LmfaoEngine {
    LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() })
}

/// Fast-failing front door so 200 schedules stay cheap: short backoff,
/// small queue, a hair-trigger breaker with a quick probe.
fn chaos_config() -> FrontDoorConfig {
    FrontDoorConfig {
        queue_capacity: 8,
        retry_max: 2,
        backoff_base: Duration::from_micros(10),
        breaker_threshold: 2,
        breaker_probe_after: 1,
        ..Default::default()
    }
}

/// A mostly-valid random delta against the shadow's current state; ~1 in
/// 8 is an invalid delete (exercising the permanent-failure path).
fn random_delta(rng: &mut Rng, shadow: &Database) -> Delta {
    match rng.below(8) {
        0 => Delta::delete("F", frow(9, 9, 999.0)), // never present: permanent
        1 | 2 => {
            let f = shadow.get("F").unwrap();
            if f.len() > 1 {
                Delta::delete("F", f.row_vec(rng.below(f.len() as u64) as usize))
            } else {
                Delta::insert("F", frow(rng.below(3) as i64, rng.below(2) as i64, 77.0))
            }
        }
        _ => {
            let (a, b) = (rng.below(3) as i64, rng.below(2) as i64);
            Delta::insert("F", frow(a, b, rng.below(50) as f64))
        }
    }
}

/// A random schedule over queue, writer, breaker, and maintenance sites.
/// Panic rules are legal everywhere: the queue/writer sites demote them
/// (`check_err`) and the maintenance sites are containment-wrapped.
fn random_plan(rng: &mut Rng, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for site in ["queue-admit", "writer-drain", "breaker-trip"] {
        if rng.chance(60) {
            plan = plan.fail_with_probability(site, 0.08 + rng.below(15) as f64 / 100.0);
        }
    }
    for site in ["maintain-view", "maintain-publish", "delta-validate", "delta-commit"] {
        if rng.chance(50) {
            plan = if rng.chance(30) {
                plan.panic_with_probability(site, 0.05 + rng.below(10) as f64 / 100.0)
            } else {
                plan.fail_with_probability(site, 0.05 + rng.below(15) as f64 / 100.0)
            };
        }
    }
    plan
}

#[test]
fn two_hundred_seeded_schedules_serve_only_cold_identical_epochs() {
    let _guard = fault_lock();
    let db = snowflake(8);
    let q = query();
    let naggs = q.batch.len();
    let (mut committed_total, mut refused_total, mut dropped_total) = (0u64, 0u64, 0u64);
    for seed in 0..200u64 {
        let mut rng = Rng(seed ^ 0xD00F_D00F);
        fault::mute(true);
        let fd = FrontDoor::new(lmfao_seq(), &db, &q, chaos_config())
            .unwrap_or_else(|e| panic!("seed {seed}: prepare: {e}"));
        fault::mute(false);
        fault::install(random_plan(&mut rng, seed));

        let e0 = fd.epoch();
        let mut shadow = db.clone();
        for step in 0..6 {
            let delta = random_delta(&mut rng, &shadow);
            let before = fd.epoch();
            let admitted = fd.submit(delta.clone());
            fd.flush();
            let after = fd.epoch();
            // Everything from here to the un-mute is verification over the
            // shadow — it must not consume fault-site occurrences.
            fault::mute(true);
            match admitted {
                Err(_) => {
                    refused_total += 1;
                    assert_eq!(after, before, "seed {seed} step {step}: refused submit published");
                }
                Ok(()) => {
                    if after == before + 1 {
                        shadow.apply_delta(&delta).unwrap_or_else(|e| {
                            panic!("seed {seed} step {step}: serving committed, shadow: {e}")
                        });
                    } else {
                        assert_eq!(
                            after, before,
                            "seed {seed} step {step}: one batch, at most one epoch"
                        );
                        dropped_total += 1;
                    }
                }
            }
            // Reader view: pin the published snapshot and compare
            // bit-for-bit against a cold recompute over the shadow —
            // which tracks exactly the committed batches.
            let snap = fd.snapshot();
            assert_eq!(snap.epoch(), after);
            let got = fd.serving().query_at(&snap).unwrap();
            let want = FlatEngine.run(&shadow, &q).unwrap();
            assert_bit_identical(&want, &got, &format!("seed {seed} step {step}"), naggs);
            fault::mute(false);
        }

        // Heal: the faults clear, one last delta must flow end to end and
        // the accounting must close.
        fault::clear();
        let final_delta = Delta::insert("F", frow(1, 1, 11.0));
        fd.submit(final_delta.clone()).unwrap_or_else(|e| panic!("seed {seed}: healed: {e}"));
        fd.flush();
        shadow.apply_delta(&final_delta).unwrap();
        let stats = fd.stats();
        assert_eq!(stats.queued, 0, "seed {seed}: queue fully drains");
        assert_eq!(
            fd.epoch(),
            e0 + stats.batches_committed,
            "seed {seed}: final epoch == committed batches"
        );
        let want = FlatEngine.run(&shadow, &q).unwrap();
        let (_, got) = fd.query().unwrap();
        assert_bit_identical(&want, &got, &format!("seed {seed}: healed"), naggs);
        committed_total += stats.batches_committed;
    }
    // The schedules must genuinely exercise every outcome class.
    assert!(committed_total > 200, "committed {committed_total}: schedules too hostile");
    assert!(refused_total > 0, "no submit was ever refused across 200 schedules");
    assert!(dropped_total > 0, "no batch was ever dropped across 200 schedules");
}

/// Satellite: retry/backoff determinism. Same seed → same fault schedule
/// → identical retry counts, breaker transitions, epochs, and result
/// bits. Flush-per-submit pins the batch boundaries so the fault-site
/// occurrence indices are schedule-independent.
#[test]
fn seeded_retry_schedules_replay_identically() {
    let _guard = fault_lock();

    fn run(seed: u64) -> (u64, u64, u64, u64, u64, Vec<BTreeMap<String, u64>>) {
        let db = snowflake(8);
        let q = query();
        fault::mute(true);
        let fd = FrontDoor::new(lmfao_seq(), &db, &q, chaos_config()).unwrap();
        fault::mute(false);
        fault::install(FaultPlan::new(seed).fail_with_probability("maintain-publish", 0.4));
        for i in 0..10i64 {
            fd.submit(Delta::insert("F", frow(i % 3, i % 2, i as f64))).unwrap();
            fd.flush();
        }
        fault::clear();
        let stats = fd.stats();
        let (epoch, result) = fd.query().unwrap();
        let digest = digest(&result, q.batch.len());
        (
            stats.retries,
            stats.breaker_trips,
            stats.batches_committed,
            stats.batches_failed,
            epoch,
            digest,
        )
    }

    let first = run(7);
    let second = run(7);
    assert_eq!(first, second, "same seed must replay to identical stats and results");
    assert!(first.0 > 0, "the schedule never exercised a retry — weaken the seed check");
    assert_eq!(first.4, first.2, "final epoch equals committed batches (initial epoch 0)");
}

/// The `breaker-trip` chaos lever: a forced trip degrades to recompute
/// without losing the batch, and the normal probe path recovers.
#[test]
fn forced_breaker_trip_degrades_and_then_recovers() {
    let _guard = fault_lock();
    let db = snowflake(6);
    let q = query();
    fault::mute(true);
    let fd = FrontDoor::new(lmfao_seq(), &db, &q, chaos_config()).unwrap();
    fault::mute(false);
    let e0 = fd.epoch();
    let mut shadow = db.clone();

    fault::install(FaultPlan::new(3).fail_at("breaker-trip", 1));
    let d1 = Delta::insert("F", frow(0, 0, 50.0));
    shadow.apply_delta(&d1).unwrap();
    fd.submit(d1).unwrap();
    fd.flush();
    fault::clear();

    // Forced trip at batch entry: committed degraded, breaker armed for a
    // probe (probe_after = 1 and the post-trip success already counts).
    assert_eq!(fd.epoch(), e0 + 1, "the tripping batch still commits");
    assert!(fd.serving().is_degraded());
    assert_eq!(fd.breaker_state(), BreakerState::HalfOpen);
    assert_eq!(fd.stats().breaker_trips, 1);

    // Next batch probes: re-prepare succeeds (no faults), recovery.
    let d2 = Delta::insert("F", frow(1, 0, 51.0));
    shadow.apply_delta(&d2).unwrap();
    fd.submit(d2).unwrap();
    fd.flush();
    let stats = fd.stats();
    assert_eq!(fd.breaker_state(), BreakerState::Closed);
    assert!(!fd.serving().is_degraded());
    assert_eq!((stats.breaker_probes, stats.breaker_recoveries), (1, 1));
    assert_eq!(fd.epoch(), e0 + 2);

    let want = FlatEngine.run(&shadow, &q).unwrap();
    let (_, got) = fd.query().unwrap();
    assert_bit_identical(&want, &got, "post-recovery", q.batch.len());
}

/// Injected admission faults refuse without publishing; injected drain
/// faults are transient and retried.
#[test]
fn injected_admission_refusals_never_publish_and_drain_faults_retry() {
    let _guard = fault_lock();
    let db = snowflake(6);
    let q = query();
    fault::mute(true);
    let fd = FrontDoor::new(lmfao_seq(), &db, &q, chaos_config()).unwrap();
    fault::mute(false);
    let e0 = fd.epoch();
    let mut shadow = db.clone();

    fault::install(FaultPlan::new(5).fail_at("queue-admit", 2).fail_at("writer-drain", 1));
    // First submit passes admission; its drain fails once, then retries.
    let d1 = Delta::insert("F", frow(2, 1, 60.0));
    shadow.apply_delta(&d1).unwrap();
    fd.submit(d1).unwrap();
    fd.flush();
    assert_eq!(fd.epoch(), e0 + 1);
    assert_eq!(fd.stats().retries, 1, "the injected drain fault cost one retry");

    // Second submit is refused at admission — never queued, never an epoch.
    let err = fd.submit(Delta::insert("F", frow(0, 1, 61.0))).unwrap_err();
    assert!(matches!(err, fdb::data::DataError::Injected(_)), "got {err:?}");
    fd.flush();
    assert_eq!(fd.epoch(), e0 + 1, "refused submit published an epoch");
    assert_eq!(fd.stats().rejected, 1);

    // Third flows cleanly.
    let d3 = Delta::insert("F", frow(1, 1, 62.0));
    shadow.apply_delta(&d3).unwrap();
    fd.submit(d3).unwrap();
    fd.flush();
    fault::clear();
    assert_eq!(fd.epoch(), e0 + 2);

    fault::mute(true);
    let want = FlatEngine.run(&shadow, &q).unwrap();
    let (_, got) = fd.query().unwrap();
    assert_bit_identical(&want, &got, "after refusals", q.batch.len());
    fault::mute(false);
}
