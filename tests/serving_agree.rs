//! Concurrent serving correctness: R reader threads issue queries against
//! a `ServingEngine` while a writer thread streams deltas through it. The
//! contract, for **every** engine composition on dish, retailer, and zipf
//! snowflakes: a reader's `(epoch, result)` pair is **bit-identical** to a
//! cold single-threaded run of the same query over the equivalently
//! mutated database at exactly the epoch the reader pinned — no torn
//! snapshots, no stale cache hits across epoch boundaries, no float drift
//! from racing maintenance.
//!
//! Bit-identity (not tolerance) is achievable because each engine is
//! compared against *its own* cold runs and every aggregate below is
//! integer-valued or dyadic (dish prices are whole units), so ring merges
//! are exact in f64 regardless of summation order.

use fdb::data::{Database, Delta, Value};
use fdb::lmfao::serve::ServingEngine;
use fdb::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

type DynEngine = Box<dyn MaintainableEngine + Send + Sync>;

/// The maintainable-engine panel (mirrors `tests/delta_agree.rs`): every
/// backend plus the sharded and dispatch compositions.
fn panel() -> Vec<(String, DynEngine)> {
    let seq = EngineConfig { threads: 1, ..Default::default() };
    vec![
        ("flat".into(), Box::new(FlatEngine)),
        ("factorized".into(), Box::new(FactorizedEngine::new())),
        ("lmfao".into(), Box::new(LmfaoEngine::with_config(seq))),
        (
            "lmfao-hash".into(),
            Box::new(LmfaoEngine::with_config(EngineConfig { dense_limit: 0, ..seq })),
        ),
        (
            "lmfao-recompute".into(),
            Box::new(LmfaoEngine::with_config(EngineConfig { delta_maintain: false, ..seq })),
        ),
        ("dispatch".into(), Box::new(DispatchEngine::new())),
        (
            "sharded-lmfao".into(),
            Box::new(
                ShardedEngine::with_shards(LmfaoEngine::with_config(seq), 3)
                    .with_min_rows_per_shard(1),
            ),
        ),
        (
            "sharded-dispatch".into(),
            Box::new(
                ShardedEngine::with_shards(DispatchEngine::new(), 2).with_min_rows_per_shard(1),
            ),
        ),
    ]
}

/// Exact equality — same group attrs, same represented keys, same bits.
fn assert_bit_identical(expect: &BatchResult, got: &BatchResult, tag: &str, naggs: usize) {
    for i in 0..naggs {
        assert_eq!(expect.groups[i], got.groups[i], "{tag}: agg {i}: group attrs");
        assert_eq!(
            expect.grouped(i).len(),
            got.grouped(i).len(),
            "{tag}: agg {i}: represented key count"
        );
        for (k, v) in expect.grouped(i) {
            let g = got.grouped(i).get(k).copied();
            assert_eq!(
                g.map(f64::to_bits),
                Some(v.to_bits()),
                "{tag}: agg {i} key {k:?}: expected {v}, got {g:?}"
            );
        }
    }
}

/// For each panel engine: precompute the cold single-threaded result at
/// every epoch (the same engine over an equivalently mutated shadow
/// database), then serve with `readers` concurrent reader threads racing
/// one writer that streams `deltas`. Every reader assertion keys on the
/// epoch its snapshot pinned.
fn serve_and_check(db: &Database, q: &AggQuery, deltas: &[Delta], readers: usize) {
    for (name, engine) in panel() {
        // Cold per-epoch truth, before any serving starts. The shadow's
        // relations get content ids distinct from the serving copies, so
        // these runs can never share (or pollute) view-cache entries with
        // the concurrent phase below.
        let mut shadow = db.clone();
        let mut expected =
            vec![engine.run(&shadow, q).unwrap_or_else(|e| panic!("{name}: cold 0: {e}"))];
        for (i, d) in deltas.iter().enumerate() {
            shadow.apply_delta(d).unwrap_or_else(|e| panic!("{name}: shadow {i}: {e}"));
            expected.push(engine.run(&shadow, q).unwrap_or_else(|e| panic!("{name}: cold: {e}")));
        }

        let serving =
            ServingEngine::new(engine, db, q).unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
        let e0 = serving.epoch();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let (name, serving, expected, done) = (&name, &serving, &expected, &done);
            for r in 0..readers {
                s.spawn(move || {
                    let mut served = 0usize;
                    // Keep reading until the writer finished AND this
                    // reader verified the stream a few times — so every
                    // reader provably races live publications.
                    while !done.load(Ordering::Acquire) || served < 3 {
                        let (epoch, got) =
                            serving.query().unwrap_or_else(|e| panic!("{name} r{r}: {e}"));
                        let idx = (epoch - e0) as usize;
                        assert!(idx < expected.len(), "{name} r{r}: epoch {epoch} out of range");
                        assert_bit_identical(
                            &expected[idx],
                            &got,
                            &format!("{name} reader {r} epoch {epoch}"),
                            got.groups.len(),
                        );
                        served += 1;
                    }
                });
            }
            s.spawn(move || {
                for (i, d) in deltas.iter().enumerate() {
                    serving.apply_delta(d).unwrap_or_else(|e| panic!("{name} delta {i}: {e}"));
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Release);
            });
        });

        assert_eq!(serving.epoch(), e0 + deltas.len() as u64, "{name}: every delta published");
        let (epoch, last) = serving.query().unwrap();
        assert_eq!(epoch, e0 + deltas.len() as u64);
        assert_bit_identical(
            expected.last().unwrap(),
            &last,
            &format!("{name} final epoch"),
            q.batch.len(),
        );
        let stats = serving.stats();
        assert_eq!(stats.deltas_applied, deltas.len() as u64);
        assert_eq!(stats.deltas_rejected, 0, "{name}: no delta may fail in this stream");
        assert!(stats.queries > (readers * 3) as u64);
    }
}

#[test]
fn dish_serving_matches_cold_runs_at_every_pinned_epoch() {
    let db = fdb::datasets::dish::dish_database();
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("price"));
    batch.push(Aggregate::count().by(&["customer"]));
    batch.push(Aggregate::sum("price").by(&["day", "customer"]));
    let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
    let dish_row = |d: i64, i: i64| vec![Value::Int(d), Value::Int(i)];
    let order_row = db.get("Orders").unwrap().row_vec(0);
    let deltas = vec![
        Delta::insert("Orders", order_row.clone()),
        Delta::insert("Dish", dish_row(0, 3)),
        Delta::delete("Orders", order_row),
        Delta::new("Dish").with_insert(dish_row(1, 0)).with_delete(dish_row(0, 3)),
        Delta::insert("Items", db.get("Items").unwrap().row_vec(1)),
    ];
    serve_and_check(&db, &q, &deltas, 3);
}

#[test]
fn retailer_serving_matches_cold_runs_at_every_pinned_epoch() {
    let ds = fdb::datasets::retailer(fdb::datasets::RetailerConfig::tiny());
    let rels = ds.relation_refs();
    // Integer-valued aggregates (counts; `rain` is a 0/1 flag): exact in
    // f64 under every merge order, so bit-identity is well-defined even
    // through the sharded ring merges.
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("rain"));
    batch.push(Aggregate::count().by(&["category"]));
    batch.push(Aggregate::count().by(&["rain", "category"]));
    let q = AggQuery::new(&rels, batch);
    let fact = ds.db.get("Inventory").unwrap();
    let item = ds.db.get("Item").unwrap();
    let deltas = vec![
        Delta::insert("Inventory", fact.row_vec(0)),
        Delta::new("Inventory")
            .with_insert(fact.row_vec(1))
            .with_insert(fact.row_vec(2))
            .with_delete(fact.row_vec(0)),
        Delta::delete("Item", item.row_vec(0)),
        Delta::insert("Item", item.row_vec(0)),
    ];
    serve_and_check(&ds.db, &q, &deltas, 3);
}

#[test]
fn zipf_serving_matches_cold_runs_at_every_pinned_epoch() {
    let ds = fdb::datasets::zipf_snowflake(fdb::datasets::ZipfConfig {
        fact_rows: 300,
        dim_rows: 8,
        skew: 2.0,
        seed: 7,
    });
    let rels = ds.relation_refs();
    // Counts only (plain, grouped, filtered): the zipf measures are full-
    // precision floats whose sums depend on order, but counts stay
    // integer-valued — exact in f64 under every merge order.
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::count().by(&["grp"]));
    batch.push(Aggregate::count().filtered("v", FilterOp::Ge(0.0)));
    batch.push(Aggregate::count().filtered("a", FilterOp::Ge(0.0)).by(&["grp"]));
    let q = AggQuery::new(&rels, batch);
    let fact = ds.db.get("Fact").unwrap();
    let deltas = vec![
        Delta::insert("Fact", fact.row_vec(0)),
        Delta::insert("Fact", fact.row_vec(10)),
        Delta::delete("Fact", fact.row_vec(20)),
        Delta::insert("DimB", vec![Value::Int(3), Value::F64(1.0)]),
        Delta::new("Fact").with_insert(fact.row_vec(5)).with_delete(fact.row_vec(5)),
    ];
    serve_and_check(&ds.db, &q, &deltas, 3);
}
